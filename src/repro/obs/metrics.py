"""Thread-safe metric primitives and the process-wide registry.

Three instrument kinds, deliberately minimal:

- ``Counter`` — monotonically increasing float (``inc`` only).
- ``Gauge`` — settable point-in-time value (``set``/``inc``/``dec``).
- ``Histogram`` — fixed log-scale buckets sized for statement latencies
  (100 µs … 10 s plus +Inf). Quantiles are read as the upper bound of the
  bucket where the cumulative count crosses the requested rank, which is
  the same contract Prometheus' ``histogram_quantile`` offers: cheap,
  bounded error, no sample retention.

``MetricsRegistry`` is the single place instruments live. Constructing an
instrument directly is reserved for this module and its tests — production
code must go through ``registry.counter(...)`` / ``histogram(...)`` /
``gauge(...)`` (get-or-create) or ``registry.register(...)`` so every
instrument is exported; the ``metric-registration`` staticcheck rule
enforces this.

Registries also accept *collector sources*: callables returning a flat
``{name: number}`` dict, polled at export time. That is how pre-existing
stats dicts (engine WAL counters, lock-manager stats, retrieval cache
stats, service metrics) are re-exported without rewriting their owners.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from typing import Callable, Dict, Iterator, List, Tuple

# Log-scale latency buckets: 1/2.5/5 steps per decade, 100 µs to 10 s.
# The +Inf bucket is implicit (``Histogram`` tracks the observed max for it).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    """Render ints without a trailing ``.0`` so counter output stays tidy."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonic counter. ``inc`` is atomic under an internal lock."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; supports set / inc / dec."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket quantile reads.

    ``quantile(q)`` returns the upper bound of the first bucket whose
    cumulative count reaches ``ceil(q * count)``; observations landing in
    the +Inf bucket report the observed maximum instead of infinity so the
    value stays plottable. Empty histograms report 0.0.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty tuple")
        self.name = name
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._total = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._total += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        with self._lock:
            total = self._total
            if total == 0:
                return 0.0
            rank = max(1, int(q * total + 0.999999))
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += self._counts[i]
                if cumulative >= rank:
                    return bound
            return self._max

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        with self._lock:
            pairs: List[Tuple[float, int]] = []
            cumulative = 0
            for i, bound in enumerate(self.buckets):
                cumulative += self._counts[i]
                pairs.append((bound, cumulative))
            pairs.append((float("inf"), cumulative + self._counts[-1]))
            return pairs

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


class CounterMapView(Mapping):
    """Read-only ``Mapping[str, int]`` over a dict of registry counters.

    Keeps legacy surfaces like ``db.planner_stats`` alive after their
    backing storage moved into the registry: ``dict(view)``, ``view[key]``
    and iteration all work, mutation does not.
    """

    def __init__(self, counters: Dict[str, Counter]) -> None:
        self._counters = dict(counters)

    def __getitem__(self, key: str) -> int:
        return int(self._counters[key].value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CounterMapView({dict(self)!r})"


class MetricsRegistry:
    """Named instrument store with get-or-create factories and text export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._sources: Dict[str, Callable[[], Dict[str, float]]] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric

    def register(self, metric: object) -> object:
        """Adopt an externally constructed instrument (must have a unique name)."""
        name = getattr(metric, "name", None)
        if not name:
            raise ValueError("metric must expose a non-empty .name")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None and existing is not metric:
                raise ValueError(f"metric {name!r} already registered")
            self._metrics[name] = metric
        return metric

    def attach_source(
        self, prefix: str, collect: Callable[[], Dict[str, float]]
    ) -> None:
        """Register a collector polled at export time; idempotent per prefix."""
        with self._lock:
            self._sources[prefix] = collect

    def _get_or_create(self, cls, name: str, help: str):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                return existing
            metric = cls(name, help)
            self._metrics[name] = metric
            return metric

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def _collect_sources(self) -> List[Tuple[str, float]]:
        with self._lock:
            sources = list(self._sources.items())
        collected: List[Tuple[str, float]] = []
        for _prefix, collect in sources:
            try:
                sampled = collect()
            except (OSError, RuntimeError):
                continue  # a collector over a closed engine must not kill export
            for name, value in sorted(sampled.items()):
                if isinstance(value, bool):
                    collected.append((name, 1.0 if value else 0.0))
                elif isinstance(value, (int, float)):
                    collected.append((name, float(value)))
        return collected

    def samples(self) -> List[Tuple[str, str, float]]:
        """Flat ``(name, kind, value)`` rows for ``system.metrics``.

        Histograms expand into ``_count``/``_sum``/``_p50``/``_p95`` rows so
        the view stays a plain three-column relation.
        """
        with self._lock:
            metrics = sorted(self._metrics.items())
        rows: List[Tuple[str, str, float]] = []
        for name, metric in metrics:
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                rows.append((f"{name}_count", "histogram", snap["count"]))
                rows.append((f"{name}_sum", "histogram", snap["sum"]))
                rows.append((f"{name}_p50", "histogram", snap["p50"]))
                rows.append((f"{name}_p95", "histogram", snap["p95"]))
            else:
                rows.append((name, metric.kind, metric.value))
        for name, value in self._collect_sources():
            rows.append((name, "gauge", value))
        return rows

    def render_text(self) -> str:
        """Prometheus text exposition (the ``# HELP`` / ``# TYPE`` format)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.bucket_counts():
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(f'{name}_bucket{{le="{le}"}} {count}')
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_format_value(metric.value)}")
        for name, value in self._collect_sources():
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"
