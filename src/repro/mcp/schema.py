"""Tool and parameter specifications (the MCP "tool card")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .errors import ToolArgumentError

_JSON_TYPES = {"string", "number", "integer", "boolean", "object", "array", "any"}


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of a tool."""

    name: str
    type: str = "string"
    description: str = ""
    required: bool = True
    default: Any = None

    def __post_init__(self):
        if self.type not in _JSON_TYPES:
            raise ValueError(f"unknown parameter type {self.type!r}")

    def validate(self, value: Any) -> Any:
        """Check/coerce one argument value against this spec."""
        if value is None:
            if self.required:
                raise ToolArgumentError(f"missing required argument {self.name!r}")
            return self.default
        checkers = {
            "string": lambda v: isinstance(v, str),
            "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "any": lambda v: True,
        }
        if not checkers[self.type](value):
            raise ToolArgumentError(
                f"argument {self.name!r} expects {self.type}, got "
                f"{type(value).__name__}"
            )
        return value


@dataclass
class ToolSpec:
    """The full description of a tool, as shown to an LLM."""

    name: str
    description: str
    params: list[ParamSpec] = field(default_factory=list)
    #: extra metadata, e.g. {"action": "SELECT"} for SQL execution tools
    annotations: dict[str, Any] = field(default_factory=dict)

    def param(self, name: str) -> ParamSpec | None:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None

    def validate_args(self, args: dict[str, Any]) -> dict[str, Any]:
        """Validate/complete an argument dict; raises ToolArgumentError."""
        unknown = set(args) - {p.name for p in self.params}
        if unknown:
            raise ToolArgumentError(
                f"unknown argument(s) for {self.name}: {', '.join(sorted(unknown))}"
            )
        validated: dict[str, Any] = {}
        for spec in self.params:
            validated[spec.name] = spec.validate(args.get(spec.name))
        return validated

    def render(self) -> str:
        """Deterministic textual rendering (counts toward LLM context)."""
        lines = [f"tool {self.name}: {self.description}"]
        for spec in self.params:
            required = "required" if spec.required else f"optional={spec.default!r}"
            lines.append(
                f"  - {spec.name} ({spec.type}, {required}): {spec.description}"
            )
        return "\n".join(lines)

    def to_json_schema(self) -> dict[str, Any]:
        """Export in MCP/JSON-schema wire format."""
        return {
            "name": self.name,
            "description": self.description,
            "inputSchema": {
                "type": "object",
                "properties": {
                    p.name: {"type": p.type, "description": p.description}
                    for p in self.params
                },
                "required": [p.name for p in self.params if p.required],
            },
            "annotations": dict(self.annotations),
        }
