"""Tool server base class and the ``@tool`` declaration decorator."""

from __future__ import annotations

import inspect
from typing import Any, Callable

from .errors import ToolError, ToolNotFoundError
from .messages import ToolCall, ToolResult
from .schema import ParamSpec, ToolSpec


def tool(
    name: str | None = None,
    description: str = "",
    params: list[ParamSpec] | None = None,
    **annotations: Any,
) -> Callable:
    """Mark a method as a tool implementation.

    Parameter specs default to being inferred from the method signature
    (every parameter typed as ``any`` and required unless it has a default).
    """

    def decorate(fn: Callable) -> Callable:
        fn.__tool_decl__ = {
            "name": name or fn.__name__,
            "description": description or (fn.__doc__ or "").strip(),
            "params": params,
            "annotations": annotations,
        }
        return fn

    return decorate


def _infer_params(fn: Callable) -> list[ParamSpec]:
    specs: list[ParamSpec] = []
    signature = inspect.signature(fn)
    for param in signature.parameters.values():
        if param.name == "self":
            continue
        required = param.default is inspect.Parameter.empty
        specs.append(
            ParamSpec(
                param.name,
                type="any",
                required=required,
                default=None if required else param.default,
            )
        )
    return specs


class ToolServer:
    """Base class: collects ``@tool``-decorated methods into a tool table.

    Subclasses may also register tools dynamically with :meth:`register`,
    and restrict visibility by overriding :meth:`visible_tools` (this is how
    BridgeScope exposes only privilege-compatible tools).
    """

    name = "server"

    def __init__(self):
        self._tools: dict[str, tuple[ToolSpec, Callable]] = {}
        for attr in dir(self):
            fn = getattr(self, attr)
            decl = getattr(fn, "__tool_decl__", None)
            if decl is None:
                continue
            spec = ToolSpec(
                name=decl["name"],
                description=decl["description"],
                params=decl["params"] or _infer_params(fn.__func__),
                annotations=dict(decl["annotations"]),
            )
            self._tools[spec.name] = (spec, fn)

    # ------------------------------------------------------------- registry

    def register(
        self, spec: ToolSpec, fn: Callable[..., Any]
    ) -> None:
        """Attach an extra tool at runtime."""
        self._tools[spec.name] = (spec, fn)

    def unregister(self, name: str) -> None:
        self._tools.pop(name, None)

    def rename_tools(self, mapper: Callable[[str], str]) -> None:
        """Rename every registered tool via ``mapper(old_name) -> new_name``.

        Used by the multi-datasource combiner to namespace colliding tool
        tables; specs are updated in place so held references stay valid.
        """
        renamed = {}
        for name, (spec, fn) in self._tools.items():
            spec.name = mapper(name)
            renamed[spec.name] = (spec, fn)
        self._tools = renamed

    def visible_tools(self) -> list[ToolSpec]:
        """Tool specs exposed to the caller; subclasses may filter."""
        return [spec for spec, _ in self._tools.values()]

    def has_tool(self, name: str) -> bool:
        return any(spec.name == name for spec in self.visible_tools())

    def spec(self, name: str) -> ToolSpec:
        for candidate in self.visible_tools():
            if candidate.name == name:
                return candidate
        raise ToolNotFoundError(name, [s.name for s in self.visible_tools()])

    # ------------------------------------------------------------- calling

    def call(self, call: ToolCall) -> ToolResult:
        """Invoke a tool; all failures are folded into an error ToolResult."""
        try:
            spec = self.spec(call.tool)
            _, fn = self._tools[call.tool]
            args = spec.validate_args(call.args)
            content = fn(**args)
            if isinstance(content, ToolResult):
                return content
            return ToolResult.ok(content)
        except ToolError as exc:
            return ToolResult.error(exc.message, code=type(exc).__name__)
        except Exception as exc:  # engine errors surface with their class name
            return ToolResult.error(str(exc), code=type(exc).__name__)

    def invoke(self, tool_name: str, **args: Any) -> ToolResult:
        """Convenience wrapper around :meth:`call`."""
        return self.call(ToolCall(tool_name, args))

    # ------------------------------------------------------------ rendering

    def render_tool_list(self) -> str:
        """Deterministic text block describing all visible tools."""
        return "\n\n".join(spec.render() for spec in self.visible_tools())
