"""A minimal MCP-style tool protocol layer.

Models the slice of the Model Context Protocol that BridgeScope relies on:
tool specifications with JSON-schema-ish parameter declarations, tool
servers that expose a set of tools, a registry aggregating servers, and
uniform call/result messages with an error channel.
"""

from .errors import ToolError, ToolNotFoundError, ToolArgumentError
from .messages import ToolCall, ToolResult
from .registry import ToolRegistry
from .schema import ParamSpec, ToolSpec
from .server import ToolServer, tool

__all__ = [
    "ParamSpec",
    "ToolArgumentError",
    "ToolCall",
    "ToolError",
    "ToolNotFoundError",
    "ToolRegistry",
    "ToolResult",
    "ToolServer",
    "ToolSpec",
    "tool",
]
