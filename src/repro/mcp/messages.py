"""Call/result message types exchanged between agent and tool servers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class ToolCall:
    """A request to invoke ``tool`` with ``args``."""

    tool: str
    args: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = ", ".join(f"{k}={_short(v)}" for k, v in self.args.items())
        return f"{self.tool}({parts})"


@dataclass
class ToolResult:
    """The outcome of one tool invocation.

    ``content`` is the payload handed back to the caller (string for LLM
    consumption, or any Python object when tools exchange data directly via
    the proxy). ``is_error`` discriminates failures; ``error_code`` carries
    the originating error class name for agent-side dispatch.
    """

    content: Any
    is_error: bool = False
    error_code: str | None = None
    #: wall-clock-free execution metadata (row counts etc.) for benchmarks
    metadata: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def ok(cls, content: Any, **metadata: Any) -> "ToolResult":
        return cls(content=content, metadata=metadata)

    @classmethod
    def error(cls, message: str, code: str = "ToolError") -> "ToolResult":
        return cls(content=message, is_error=True, error_code=code)

    def render(self) -> str:
        """Text as it would enter an LLM context."""
        prefix = "ERROR: " if self.is_error else ""
        return f"{prefix}{_stringify(self.content)}"


def _short(value: Any, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _stringify(content: Any) -> str:
    if isinstance(content, str):
        return content
    return repr(content)
