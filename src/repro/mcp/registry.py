"""Registry aggregating multiple tool servers behind one namespace.

The agent sees a flat tool list; the registry routes each call to the
server owning the tool. Name collisions are resolved in registration order
(first server wins), mirroring typical MCP client behavior.
"""

from __future__ import annotations

from typing import Any

from .errors import ToolNotFoundError
from .messages import ToolCall, ToolResult
from .schema import ToolSpec
from .server import ToolServer


class ToolRegistry:
    def __init__(self, servers: list[ToolServer] | None = None):
        self.servers: list[ToolServer] = list(servers or [])

    def add_server(self, server: ToolServer) -> None:
        self.servers.append(server)

    # -------------------------------------------------------------- lookup

    def visible_tools(self) -> list[ToolSpec]:
        seen: set[str] = set()
        specs: list[ToolSpec] = []
        for server in self.servers:
            for spec in server.visible_tools():
                if spec.name not in seen:
                    seen.add(spec.name)
                    specs.append(spec)
        return specs

    def tool_names(self) -> list[str]:
        return [spec.name for spec in self.visible_tools()]

    def has_tool(self, name: str) -> bool:
        return name in self.tool_names()

    def owner_of(self, name: str) -> ToolServer:
        for server in self.servers:
            if server.has_tool(name):
                return server
        raise ToolNotFoundError(name, self.tool_names())

    # ------------------------------------------------------------- calling

    def call(self, call: ToolCall) -> ToolResult:
        try:
            server = self.owner_of(call.tool)
        except ToolNotFoundError as exc:
            return ToolResult.error(exc.message, code="ToolNotFoundError")
        return server.call(call)

    def invoke(self, tool_name: str, **args: Any) -> ToolResult:
        return self.call(ToolCall(tool_name, args))

    def render_tool_list(self) -> str:
        """Concatenate each server's own rendering (servers control how
        verbose their wire format is — e.g. raw JSON schemas for MCP)."""
        blocks = [
            server.render_tool_list()
            for server in self.servers
            if server.visible_tools()
        ]
        return "\n\n".join(blocks)
