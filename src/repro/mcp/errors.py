"""Error types for the tool protocol layer."""

from __future__ import annotations


class ToolError(Exception):
    """Base error for tool invocation failures.

    ``retriable`` hints to the agent whether re-planning could help (e.g. a
    bad SQL string) versus a hard denial (permission policy).
    """

    def __init__(self, message: str, retriable: bool = True):
        super().__init__(message)
        self.message = message
        self.retriable = retriable


class ToolNotFoundError(ToolError):
    """The requested tool is not exposed to this caller."""

    def __init__(self, name: str, available: list[str] | None = None):
        hint = f" (available: {', '.join(available)})" if available else ""
        super().__init__(f"tool {name!r} not found{hint}", retriable=True)
        self.name = name


class ToolArgumentError(ToolError):
    """Arguments did not match the tool's parameter specification."""
