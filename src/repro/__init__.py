"""Reproduction of BridgeScope (CIDR 2026): a universal toolkit bridging
LLMs and databases.

Subpackages:

* :mod:`repro.minidb` — from-scratch relational engine (PostgreSQL stand-in)
* :mod:`repro.mcp` — MCP-style tool protocol layer
* :mod:`repro.core` — the BridgeScope toolkit (context retrieval, modular
  SQL execution, transactions, proxy data routing)
* :mod:`repro.baselines` — PG-MCP baseline family
* :mod:`repro.llm` — simulated LLM substrate (tokenizer, profiles, policy)
* :mod:`repro.agent` — ReAct agent loop
* :mod:`repro.mltools` — analytical/ML tools for data-intensive workflows
* :mod:`repro.bench` — BIRD-Ext and NL2ML benchmarks plus the harness
"""

__version__ = "1.0.0"

from .core import BridgeScope, BridgeScopeConfig, SecurityPolicy  # noqa: F401
from .minidb import Database  # noqa: F401

__all__ = ["BridgeScope", "BridgeScopeConfig", "Database", "SecurityPolicy", "__version__"]
