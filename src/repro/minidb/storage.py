"""Row storage and secondary indexes for minidb.

A :class:`HeapTable` stores rows as dicts keyed by column name, addressed by
a monotonically increasing row id (rid). Deleted rids leave tombstones (the
rid simply disappears from the dict), which keeps undo-log entries cheap:
the transaction manager records (rid, old_row) pairs and can restore them
verbatim.

Secondary :class:`HashIndex` structures map a tuple of column values to the
set of rids holding it; unique indexes enforce at-most-one rid per key and
are the enforcement mechanism for PRIMARY KEY and UNIQUE constraints.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from .errors import UniqueViolation

Row = dict[str, Any]

#: process-wide unique ids for heaps — a dropped-and-recreated table gets a
#: fresh uid, so caches keyed by (uid, version) can never confuse the new
#: heap with the old one even though both start at version 0. The counter
#: is shared by every database in the process (concurrent sessions may
#: CREATE TABLE simultaneously), hence the allocator mutex: a duplicated
#: uid would silently alias two heaps' retrieval-cache fingerprints.
_next_heap_uid = 1
_uid_mutex = threading.Lock()


def take_heap_uid() -> int:
    """Allocate the next process-wide heap uid (thread-safe)."""
    global _next_heap_uid
    with _uid_mutex:
        uid = _next_heap_uid
        _next_heap_uid += 1
        return uid


def reserve_heap_uids(minimum: int) -> None:
    """Advance the uid counter past ``minimum``.

    Durable-engine recovery restores heaps under their persisted uids;
    reserving keeps freshly created heaps from colliding with them (uids
    must stay unique for the life of the process, since retrieval caches
    and persisted catalogs key on ``(uid, version)``).
    """
    global _next_heap_uid
    with _uid_mutex:
        _next_heap_uid = max(_next_heap_uid, minimum + 1)


class HashIndex:
    """Equality index over one or more columns.

    NULL-containing keys are excluded from uniqueness checks, matching SQL's
    rule that NULL is never equal to NULL.
    """

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple, set[int]] = {}

    def key_for(self, row: Row) -> tuple:
        return tuple(row.get(c) for c in self.columns)

    def _has_null(self, key: tuple) -> bool:
        return any(v is None for v in key)

    def insert(self, rid: int, row: Row, owner: str = "?") -> None:
        key = self.key_for(row)
        if self._has_null(key):
            return
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket and rid not in bucket:
            raise UniqueViolation(
                f"duplicate key value violates unique constraint {self.name!r} "
                f"on {owner}({', '.join(self.columns)}): {key!r}"
            )
        bucket.add(rid)

    def remove(self, rid: int, row: Row) -> None:
        key = self.key_for(row)
        if self._has_null(key):
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self._buckets[key]

    def bulk_load(self, rows: "Iterator[tuple[int, Row]] | list[tuple[int, Row]]") -> None:
        """Fill buckets from known-consistent rows without uniqueness checks.

        Snapshot recovery rebuilds indexes over rows that already satisfied
        every constraint when they were written, so the per-row uniqueness
        probe of :meth:`insert` is pure overhead there.
        """
        buckets = self._buckets
        columns = self.columns
        if len(columns) == 1:  # the common case (PK/unique on one column)
            column = columns[0]
            for rid, row in rows:
                value = row.get(column)
                if value is None:
                    continue
                key = (value,)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = {rid}
                else:
                    bucket.add(rid)
            return
        for rid, row in rows:
            key = tuple(row.get(c) for c in columns)
            if any(v is None for v in key):
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = {rid}
            else:
                bucket.add(rid)

    def probe(self, key: tuple) -> set[int]:
        """rids whose indexed columns equal ``key`` exactly."""
        if self._has_null(key):
            return set()
        return set(self._buckets.get(key, ()))

    def would_violate(self, row: Row, ignore_rid: int | None = None) -> bool:
        """Whether inserting ``row`` would break uniqueness (pre-check)."""
        if not self.unique:
            return False
        key = self.key_for(row)
        if self._has_null(key):
            return False
        bucket = self._buckets.get(key, set())
        remaining = bucket - {ignore_rid} if ignore_rid is not None else bucket
        return bool(remaining)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class HeapTable:
    """In-memory heap of rows with attached secondary indexes."""

    def __init__(self, name: str):
        self.name = name
        self._rows: dict[int, Row] = {}
        self._next_rid = 1
        self.indexes: dict[str, HashIndex] = {}
        #: identity of this heap across DROP/CREATE cycles of the same name
        self.uid = take_heap_uid()
        #: monotonically increasing change counter, bumped on every row,
        #: column, or index mutation — including those replayed by
        #: transaction undo (rollback goes through insert/update/delete/
        #: restore below), so derived caches keyed on (uid, version) are
        #: invalidated by INSERT/UPDATE/DELETE, DDL, *and* ROLLBACK alike
        self.version = 0
        #: insertion order of ``_rows`` no longer matches rid order; set
        #: only by out-of-order :meth:`restore` (undo / WAL replay) so the
        #: common :meth:`rows` scan skips the sort entirely
        self._rows_unsorted = False

    def _bump(self) -> None:
        self.version += 1

    @classmethod
    def from_snapshot(
        cls,
        name: str,
        rows: "list[tuple[int, Row]] | list[list]",
        next_rid: int,
        uid: int,
        version: int,
        indexes: "list[HashIndex]",
    ) -> "HeapTable":
        """Reconstruct a heap exactly as persisted by the durable engine.

        ``rows`` must already be in rid order (snapshots are written from
        :meth:`rows`); indexes arrive as empty definitions and are
        bulk-loaded without uniqueness checks, since the snapshot captured
        a state that satisfied every constraint when written. The
        persisted ``(uid, version)`` identity is restored verbatim — and
        the process-wide uid counter advanced past it — so caches and
        persisted value catalogs fingerprinted before the restart stay
        valid after it.
        """
        heap = cls(name)
        heap._rows = {rid: row for rid, row in rows}
        heap._next_rid = next_rid
        heap.uid = uid
        heap.version = version
        reserve_heap_uids(uid)
        for index in indexes:
            index.bulk_load(heap._rows.items())
            heap.indexes[index.name] = index
        return heap

    # -------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[int, Row]]:
        """Iterate (rid, row) pairs in rid order.

        Inserts allocate monotonically increasing rids, so dict insertion
        order already *is* rid order; only an out-of-order :meth:`restore`
        breaks the invariant, in which case the dict is re-sorted once and
        the invariant re-established. The snapshot (``list``) keeps callers
        safe from mutations performed while the iterator is live.
        """
        if self._rows_unsorted:
            self._rows = dict(sorted(self._rows.items()))
            self._rows_unsorted = False
        yield from list(self._rows.items())

    def get(self, rid: int) -> Row | None:
        return self._rows.get(rid)

    # ---------------------------------------------------------- mutations

    def insert(self, row: Row) -> int:
        """Insert ``row`` and maintain all indexes; returns the new rid."""
        rid = self._next_rid
        self._next_rid += 1
        # index first so a uniqueness failure leaves the heap untouched
        inserted: list[HashIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(rid, row, owner=self.name)
                inserted.append(index)
        except UniqueViolation:
            for index in inserted:
                index.remove(rid, row)
            raise
        self._rows[rid] = dict(row)
        self._bump()
        return rid

    def restore(self, rid: int, row: Row) -> None:
        """Put back a previously deleted row under its original rid (undo)."""
        if self._rows and rid < next(reversed(self._rows)):
            self._rows_unsorted = True
        self._rows[rid] = dict(row)
        self._next_rid = max(self._next_rid, rid + 1)
        for index in self.indexes.values():
            index.insert(rid, row, owner=self.name)
        self._bump()

    def update(self, rid: int, new_row: Row) -> Row:
        """Replace the row at ``rid``; returns the old row (for undo logs)."""
        old_row = self._rows[rid]
        for index in self.indexes.values():
            if index.unique and index.key_for(new_row) != index.key_for(old_row):
                if index.would_violate(new_row, ignore_rid=rid):
                    raise UniqueViolation(
                        f"duplicate key value violates unique constraint "
                        f"{index.name!r} on {self.name}"
                    )
        for index in self.indexes.values():
            index.remove(rid, old_row)
            index.insert(rid, new_row, owner=self.name)
        self._rows[rid] = dict(new_row)
        self._bump()
        return old_row

    def delete(self, rid: int) -> Row:
        """Remove the row at ``rid``; returns it (for undo logs)."""
        row = self._rows.pop(rid)
        for index in self.indexes.values():
            index.remove(rid, row)
        self._bump()
        return row

    # ------------------------------------------------------------- indexes

    def add_index(self, index: HashIndex) -> None:
        """Attach and backfill an index; rolls back on uniqueness violation."""
        inserted: list[tuple[int, Row]] = []
        try:
            for rid, row in self._rows.items():
                index.insert(rid, row, owner=self.name)
                inserted.append((rid, row))
        except UniqueViolation:
            for rid, row in inserted:
                index.remove(rid, row)
            raise
        self.indexes[index.name] = index
        # index DDL changes the heap's access paths (and its durable
        # representation), so it must move the (uid, version) fingerprint
        self._bump()

    def drop_index(self, name: str) -> HashIndex:
        index = self.indexes.pop(name)
        self._bump()
        return index

    def attach_index(self, index: HashIndex) -> None:
        """Re-attach a previously dropped index, buckets intact (undo)."""
        self.indexes[index.name] = index
        self._bump()

    def find_index(self, columns: tuple[str, ...]) -> HashIndex | None:
        """An index exactly covering ``columns``, if any."""
        for index in self.indexes.values():
            if index.columns == columns:
                return index
        return None

    # ------------------------------------------------------ schema changes

    def add_column(self, name: str, default: Any = None) -> None:
        for row in self._rows.values():
            row[name] = default
        self._bump()

    def drop_column(self, name: str) -> None:
        for row in self._rows.values():
            row.pop(name, None)
        self._bump()

    def restore_column(self, name: str, values: dict[int, Any]) -> None:
        """Re-attach a dropped column's values by rid (undo for drop_column)."""
        for rid, row in self._rows.items():
            row[name] = values.get(rid)
        self._bump()

    def rename_column(self, old: str, new: str) -> None:
        for row in self._rows.values():
            if old in row:
                row[new] = row.pop(old)
        for index in self.indexes.values():
            index.columns = tuple(new if c == old else c for c in index.columns)
            index._buckets = dict(index._buckets)  # keys unchanged (values only)
        self._bump()
