"""Row storage and secondary indexes for minidb.

A :class:`HeapTable` stores rows as dicts keyed by column name, addressed by
a monotonically increasing row id (rid). Deleted rids leave tombstones (the
rid simply disappears from the dict), which keeps undo-log entries cheap:
the transaction manager records (rid, old_row) pairs and can restore them
verbatim.

Two kinds of secondary index attach to a heap:

* :class:`HashIndex` maps a tuple of column values to the set of rids
  holding it; unique indexes enforce at-most-one rid per key and are the
  enforcement mechanism for PRIMARY KEY and UNIQUE constraints.
* :class:`SortedIndex` (``CREATE INDEX ... USING BTREE``) keeps
  ``(ordering key, rid)`` pairs in a counted (order-statistic) B+tree of
  fixed-fanout nodes, adding range probes (``col >= lo AND col < hi``),
  equality-prefix slices, and ordered forward/reverse iteration — the
  access paths behind the planner's range scans and the executor's
  sort-free ``ORDER BY ... LIMIT`` fast path.

Both index kinds share equality semantics: a key containing NULL is never
returned by :meth:`probe` and never participates in uniqueness checks
(SQL's "NULL is not equal to NULL"). A :class:`SortedIndex` still *stores*
NULL-keyed entries — ordered last, matching the executor's NULLS LAST sort
order — so an ordered scan covers every row of the heap.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from typing import Any, Iterator

from .batch import RowBatch
from .errors import UniqueViolation

Row = dict[str, Any]


def ordering_key_element(value: Any) -> tuple:
    """Total-order sort key for one value: NULLs last, numbers before text.

    This is *the* ordering of the engine: the executor's ORDER BY sort keys
    and the :class:`SortedIndex` entry order are both built from it, which
    is what lets an index-ordered scan replace a sort bit-for-bit.
    """
    if value is None:
        return (2, 0, "")
    if isinstance(value, bool):
        return (0, int(value), "")
    if isinstance(value, (int, float)):
        return (0, value, "")
    return (1, 0, str(value))


def ordering_key(values: "tuple | list") -> tuple:
    """Tuple of per-column ordering elements for a composite key."""
    return tuple(ordering_key_element(v) for v in values)


#: sorts after every ordering_key_element triple (ranks stop at 2); used to
#: build exclusive/inclusive bisect bounds over composite keys
_AFTER = (3,)

#: process-wide unique ids for heaps — a dropped-and-recreated table gets a
#: fresh uid, so caches keyed by (uid, version) can never confuse the new
#: heap with the old one even though both start at version 0. The counter
#: is shared by every database in the process (concurrent sessions may
#: CREATE TABLE simultaneously), hence the allocator mutex: a duplicated
#: uid would silently alias two heaps' retrieval-cache fingerprints.
_next_heap_uid = 1
_uid_mutex = threading.Lock()


def take_heap_uid() -> int:
    """Allocate the next process-wide heap uid (thread-safe)."""
    global _next_heap_uid
    with _uid_mutex:
        uid = _next_heap_uid
        _next_heap_uid += 1
        return uid


def reserve_heap_uids(minimum: int) -> None:
    """Advance the uid counter past ``minimum``.

    Durable-engine recovery restores heaps under their persisted uids;
    reserving keeps freshly created heaps from colliding with them (uids
    must stay unique for the life of the process, since retrieval caches
    and persisted catalogs key on ``(uid, version)``).
    """
    global _next_heap_uid
    with _uid_mutex:
        _next_heap_uid = max(_next_heap_uid, minimum + 1)


class HashIndex:
    """Equality index over one or more columns.

    NULL-containing keys are excluded from uniqueness checks, matching SQL's
    rule that NULL is never equal to NULL.
    """

    #: index method, as written in ``CREATE INDEX ... USING <kind>``
    kind = "hash"

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple, set[int]] = {}

    def key_for(self, row: Row) -> tuple:
        return tuple(row.get(c) for c in self.columns)

    def _has_null(self, key: tuple) -> bool:
        return any(v is None for v in key)

    def insert(self, rid: int, row: Row, owner: str = "?") -> None:
        key = self.key_for(row)
        if self._has_null(key):
            return
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket and rid not in bucket:
            raise UniqueViolation(
                f"duplicate key value violates unique constraint {self.name!r} "
                f"on {owner}({', '.join(self.columns)}): {key!r}"
            )
        bucket.add(rid)

    def remove(self, rid: int, row: Row) -> None:
        key = self.key_for(row)
        if self._has_null(key):
            return
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rid)
            if not bucket:
                del self._buckets[key]

    def bulk_load(self, rows: "Iterator[tuple[int, Row]] | list[tuple[int, Row]]") -> None:
        """Fill buckets from known-consistent rows without uniqueness checks.

        Snapshot recovery rebuilds indexes over rows that already satisfied
        every constraint when they were written, so the per-row uniqueness
        probe of :meth:`insert` is pure overhead there.
        """
        buckets = self._buckets
        columns = self.columns
        if len(columns) == 1:  # the common case (PK/unique on one column)
            column = columns[0]
            for rid, row in rows:
                value = row.get(column)
                if value is None:
                    continue
                key = (value,)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = {rid}
                else:
                    bucket.add(rid)
            return
        for rid, row in rows:
            key = tuple(row.get(c) for c in columns)
            if any(v is None for v in key):
                continue
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = {rid}
            else:
                bucket.add(rid)

    def probe(self, key: tuple) -> set[int]:
        """rids whose indexed columns equal ``key`` exactly."""
        if self._has_null(key):
            return set()
        return set(self._buckets.get(key, ()))

    def would_violate(self, row: Row, ignore_rid: int | None = None) -> bool:
        """Whether inserting ``row`` would break uniqueness (pre-check)."""
        if not self.unique:
            return False
        key = self.key_for(row)
        if self._has_null(key):
            return False
        bucket = self._buckets.get(key, set())
        remaining = bucket - {ignore_rid} if ignore_rid is not None else bucket
        return bool(remaining)

    def backfill(self, rows: "Iterator[tuple[int, Row]]", owner: str = "?") -> None:
        """Fill a detached index from live rows, with uniqueness checks.

        Used by :meth:`HeapTable.add_index` (CREATE INDEX over existing
        data); leaves the index empty again if a violation aborts it.
        """
        inserted: list[tuple[int, Row]] = []
        try:
            for rid, row in rows:
                self.insert(rid, row, owner=owner)
                inserted.append((rid, row))
        except UniqueViolation:
            for rid, row in inserted:
                self.remove(rid, row)
            raise

    def rename_column(self, old: str, new: str) -> None:
        """Track a column rename; keys hold values only, so buckets stand."""
        self.columns = tuple(new if c == old else c for c in self.columns)

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


#: B+tree fanout — max entries per leaf and max children per inner node.
#: Nodes split above it and (except the root) rebalance below half of it.
BTREE_FANOUT = 64
_NODE_MIN = BTREE_FANOUT // 2


class _Leaf:
    """B+tree leaf: a sorted run of ``(ordering key, rid)`` entries."""

    __slots__ = ("entries",)

    def __init__(self, entries: "list[tuple[tuple, int]] | None" = None):
        self.entries: list[tuple[tuple, int]] = (
            entries if entries is not None else []
        )


class _Inner:
    """B+tree inner node: separator entries, children, and subtree size.

    ``keys[i]`` is a lower bound for every entry under ``children[i + 1]``
    and a strict upper bound for everything under ``children[i]`` (a copy
    of the right subtree's minimum entry at split time; deletions may
    leave it stale, but it stays a valid partition because entries only
    ever shrink away from it). ``size`` counts the entries of the whole
    subtree, which is what makes the tree order-statistic: positional
    addressing (`slice_bounds` offsets) descends by child sizes.
    """

    __slots__ = ("keys", "children", "size")

    def __init__(
        self,
        keys: "list[tuple]",
        children: "list[_Leaf | _Inner]",
        size: int,
    ):
        self.keys = keys
        self.children = children
        self.size = size


def _node_size(node: "_Leaf | _Inner") -> int:
    return len(node.entries) if type(node) is _Leaf else node.size


class SortedIndex:
    """Ordered index over one or more columns (``USING BTREE``).

    Entries are ``(ordering key, rid)`` pairs held in a counted
    (order-statistic) B+tree: fixed-fanout nodes that split when a
    mutation overfills them and merge/borrow when one drains below half
    fill, so a point mutation costs O(log n) node searches plus one
    small-list insert instead of the O(n) memmove of a flat sorted array.
    Inner nodes carry subtree entry counts, so the *positional* surface of
    the old array (``slice_bounds`` returning offsets, ``ordered_rids``
    taking them) is preserved exactly. Ordering is by
    :func:`ordering_key` (NULLs last, numbers before text, ties broken by
    rid), exactly the executor's ORDER BY order, so an in-order walk of
    the leaves *is* the sorted result.

    Equality semantics match :class:`HashIndex`: :meth:`probe` never
    returns a NULL-containing key and uniqueness ignores them. Unlike a
    hash index, NULL-keyed entries are still stored (ordered last) so
    ordered scans cover the whole heap.
    """

    kind = "btree"

    def __init__(self, name: str, columns: tuple[str, ...], unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._root: "_Leaf | _Inner" = _Leaf()
        self._count = 0
        #: set False by a leaf-level idempotent re-insert so ancestor
        #: sizes (maintained on the way back up) stay untouched
        self._mutated = False

    # ------------------------------------------------------- tree primitives

    def _position(self, search: tuple) -> int:
        """Global ``bisect_left`` position of ``search`` over all entries.

        ``search`` is a 1-tuple ``(key,)`` or an entry-shaped 2-tuple,
        compared tuple-wise against entries exactly as the flat-array
        implementation compared them — shorter tuples sort before their
        extensions, which is what makes ``(key,)`` the inclusive lower
        bound of ``key``'s equal run.
        """
        node = self._root
        pos = 0
        while type(node) is _Inner:
            child_idx = bisect_left(node.keys, search)
            for child in node.children[:child_idx]:
                pos += _node_size(child)
            node = node.children[child_idx]
        return pos + bisect_left(node.entries, search)

    def _entry_at(self, pos: int) -> tuple[tuple, int]:
        node = self._root
        while type(node) is _Inner:
            for child in node.children:
                size = _node_size(child)
                if pos < size:
                    node = child
                    break
                pos -= size
        return node.entries[pos]

    def _iter_entries(
        self, start: int, end: int
    ) -> Iterator[tuple[tuple, int]]:
        """Yield entries[start:end] in order (lazy leaf walk)."""
        if start >= end:
            return
        yield from self._iter_node(self._root, start, end)

    def _iter_node(
        self, node: "_Leaf | _Inner", lo: int, hi: int
    ) -> Iterator[tuple[tuple, int]]:
        if type(node) is _Leaf:
            yield from node.entries[lo:hi]
            return
        offset = 0
        for child in node.children:
            if offset >= hi:
                return
            size = _node_size(child)
            if offset + size > lo:
                yield from self._iter_node(
                    child, max(0, lo - offset), min(size, hi - offset)
                )
            offset += size

    def _tree_insert(
        self, node: "_Leaf | _Inner", entry: tuple[tuple, int]
    ) -> "tuple[tuple, _Leaf | _Inner] | None":
        """Insert ``entry`` under ``node``; returns a (separator, new
        right sibling) pair when the node split, for the parent to graft."""
        if type(node) is _Leaf:
            entries = node.entries
            pos = bisect_left(entries, entry)
            if pos < len(entries) and entries[pos] == entry:
                self._mutated = False  # idempotent re-insert
                return None
            entries.insert(pos, entry)
            if len(entries) > BTREE_FANOUT:
                mid = len(entries) // 2
                right = _Leaf(entries[mid:])
                del entries[mid:]
                return right.entries[0], right
            return None
        # bisect_right: an entry equal to a separator lives in (and an
        # idempotent duplicate must be *found* in) the right subtree
        child_idx = bisect_right(node.keys, entry)
        split = self._tree_insert(node.children[child_idx], entry)
        if self._mutated:
            node.size += 1
        if split is not None:
            separator, right = split
            node.keys.insert(child_idx, separator)
            node.children.insert(child_idx + 1, right)
            if len(node.children) > BTREE_FANOUT:
                return self._split_inner(node)
        return None

    def _split_inner(
        self, node: _Inner
    ) -> "tuple[tuple, _Inner]":
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Inner(node.keys[mid + 1 :], node.children[mid + 1 :], 0)
        del node.keys[mid:]
        del node.children[mid + 1 :]
        right.size = sum(_node_size(c) for c in right.children)
        node.size -= right.size
        return separator, right

    def _tree_remove(
        self, node: "_Leaf | _Inner", entry: tuple[tuple, int]
    ) -> bool:
        if type(node) is _Leaf:
            entries = node.entries
            pos = bisect_left(entries, entry)
            if pos < len(entries) and entries[pos] == entry:
                del entries[pos]
                return True
            return False
        child_idx = bisect_right(node.keys, entry)
        removed = self._tree_remove(node.children[child_idx], entry)
        if removed:
            node.size -= 1
            self._rebalance(node, child_idx)
        return removed

    def _rebalance(self, parent: _Inner, child_idx: int) -> None:
        """Restore half-fill of ``parent.children[child_idx]`` by borrowing
        from an adjacent sibling (which has spare entries) or merging with
        one (when neither sibling does); the root is exempt."""
        child = parent.children[child_idx]
        if type(child) is _Leaf:
            if len(child.entries) >= _NODE_MIN:
                return
            if child_idx > 0:
                left = parent.children[child_idx - 1]
                if len(left.entries) > _NODE_MIN:
                    child.entries.insert(0, left.entries.pop())
                    parent.keys[child_idx - 1] = child.entries[0]
                    return
            if child_idx + 1 < len(parent.children):
                right = parent.children[child_idx + 1]
                if len(right.entries) > _NODE_MIN:
                    child.entries.append(right.entries.pop(0))
                    parent.keys[child_idx] = right.entries[0]
                    return
            if child_idx > 0:
                left = parent.children[child_idx - 1]
                left.entries.extend(child.entries)
                del parent.children[child_idx]
                del parent.keys[child_idx - 1]
            else:
                right = parent.children[child_idx + 1]
                child.entries.extend(right.entries)
                del parent.children[child_idx + 1]
                del parent.keys[child_idx]
            return
        if len(child.children) >= _NODE_MIN:
            return
        if child_idx > 0:
            left = parent.children[child_idx - 1]
            if len(left.children) > _NODE_MIN:
                moved = left.children.pop()
                moved_size = _node_size(moved)
                child.children.insert(0, moved)
                child.keys.insert(0, parent.keys[child_idx - 1])
                parent.keys[child_idx - 1] = left.keys.pop()
                left.size -= moved_size
                child.size += moved_size
                return
        if child_idx + 1 < len(parent.children):
            right = parent.children[child_idx + 1]
            if len(right.children) > _NODE_MIN:
                moved = right.children.pop(0)
                moved_size = _node_size(moved)
                child.children.append(moved)
                child.keys.append(parent.keys[child_idx])
                parent.keys[child_idx] = right.keys.pop(0)
                right.size -= moved_size
                child.size += moved_size
                return
        if child_idx > 0:
            left = parent.children[child_idx - 1]
            left.keys.append(parent.keys[child_idx - 1])
            left.keys.extend(child.keys)
            left.children.extend(child.children)
            left.size += child.size
            del parent.children[child_idx]
            del parent.keys[child_idx - 1]
        else:
            right = parent.children[child_idx + 1]
            child.keys.append(parent.keys[child_idx])
            child.keys.extend(right.keys)
            child.children.extend(right.children)
            child.size += right.size
            del parent.children[child_idx + 1]
            del parent.keys[child_idx]

    @staticmethod
    def _fanout_groups(count: int) -> int:
        """Number of nodes to spread ``count`` children/entries over.

        Aims for ~3/4 fill — freshly bulk-loaded trees keep insert
        headroom instead of splitting on the first mutation — but never
        drops a node below half fill (small counts fall back to fewer,
        fuller nodes).
        """
        target = BTREE_FANOUT * 3 // 4
        groups = (count + target - 1) // target
        if groups > 1 and count // groups < _NODE_MIN:
            groups = (count + BTREE_FANOUT - 1) // BTREE_FANOUT
        return groups

    def _build(self, entries: "list[tuple[tuple, int]]") -> None:
        """Rebuild the whole tree bottom-up from sorted entries (O(n))."""
        self._count = len(entries)
        if len(entries) <= BTREE_FANOUT:
            self._root = _Leaf(entries)
            return
        leaf_count = self._fanout_groups(len(entries))
        base, extra = divmod(len(entries), leaf_count)
        level: "list[_Leaf | _Inner]" = []
        offset = 0
        for i in range(leaf_count):
            take = base + (1 if i < extra else 0)
            level.append(_Leaf(entries[offset : offset + take]))
            offset += take
        while len(level) > 1:
            parent_count = self._fanout_groups(len(level))
            base, extra = divmod(len(level), parent_count)
            parents: "list[_Leaf | _Inner]" = []
            offset = 0
            for i in range(parent_count):
                take = base + (1 if i < extra else 0)
                children = level[offset : offset + take]
                offset += take
                keys = [self._min_entry(c) for c in children[1:]]
                size = sum(_node_size(c) for c in children)
                parents.append(_Inner(keys, children, size))
            level = parents
        self._root = level[0]

    @staticmethod
    def _min_entry(node: "_Leaf | _Inner") -> tuple[tuple, int]:
        while type(node) is _Inner:
            node = node.children[0]
        return node.entries[0]

    def check_invariants(self) -> None:
        """Assert the full B+tree shape (tests and debugging only)."""
        entries = list(self._iter_entries(0, self._count))
        assert entries == sorted(entries), "entries out of order"
        assert len(entries) == self._count, "count drifted from contents"

        def walk(node: "_Leaf | _Inner", is_root: bool) -> tuple[int, int]:
            """Returns (subtree entry count, leaf depth)."""
            if type(node) is _Leaf:
                assert len(node.entries) <= BTREE_FANOUT, "overfull leaf"
                if not is_root:
                    assert len(node.entries) >= _NODE_MIN, "underfull leaf"
                return len(node.entries), 0
            assert len(node.children) == len(node.keys) + 1, "key/child drift"
            assert len(node.children) <= BTREE_FANOUT, "overfull inner node"
            minimum = 2 if is_root else _NODE_MIN
            assert len(node.children) >= minimum, "underfull inner node"
            total = 0
            depths = set()
            for i, child in enumerate(node.children):
                size, depth = walk(child, False)
                total += size
                depths.add(depth)
                if i > 0:
                    assert self._min_entry(child) >= node.keys[i - 1], (
                        "separator above right subtree"
                    )
                if i < len(node.keys):
                    last = child
                    while type(last) is _Inner:
                        last = last.children[-1]
                    assert last.entries[-1] < node.keys[i], (
                        "separator below left subtree"
                    )
            assert len(depths) == 1, "leaves at unequal depths"
            assert total == node.size, "subtree size drifted"
            return total, depths.pop() + 1

        walk(self._root, True)

    # ------------------------------------------------------ HashIndex surface

    def key_for(self, row: Row) -> tuple:
        return tuple(row.get(c) for c in self.columns)

    def _has_null(self, key: tuple) -> bool:
        return any(v is None for v in key)

    def _equal_run(self, ok: tuple) -> tuple[int, int]:
        """[start, end) of entries whose full ordering key equals ``ok``."""
        start = self._position((ok,))
        end = self._position((ok + (_AFTER,),))
        return start, end

    def insert(self, rid: int, row: Row, owner: str = "?") -> None:
        key = self.key_for(row)
        ok = ordering_key(key)
        if self.unique and not self._has_null(key):
            start, end = self._equal_run(ok)
            if any(r != rid for _, r in self._iter_entries(start, end)):
                raise UniqueViolation(
                    f"duplicate key value violates unique constraint "
                    f"{self.name!r} on {owner}({', '.join(self.columns)}): "
                    f"{key!r}"
                )
        self._mutated = True
        split = self._tree_insert(self._root, (ok, rid))
        if self._mutated:
            self._count += 1
        if split is not None:
            separator, right = split
            self._root = _Inner([separator], [self._root, right], self._count)

    def remove(self, rid: int, row: Row) -> None:
        entry = (ordering_key(self.key_for(row)), rid)
        if self._tree_remove(self._root, entry):
            self._count -= 1
            root = self._root
            while type(root) is _Inner and len(root.children) == 1:
                root = root.children[0]
            self._root = root

    def bulk_load(
        self, rows: "Iterator[tuple[int, Row]] | list[tuple[int, Row]]"
    ) -> None:
        """Sort known-consistent rows and build the tree in one pass
        (snapshot recovery)."""
        columns = self.columns
        self._build(
            sorted(
                (ordering_key(tuple(row.get(c) for c in columns)), rid)
                for rid, row in rows
            )
        )

    def backfill(self, rows: "Iterator[tuple[int, Row]]", owner: str = "?") -> None:
        """Fill a detached index from live rows (CREATE INDEX backfill).

        One sort instead of n tree inserts; uniqueness falls out of
        adjacency — duplicate non-NULL keys end up next to each other.
        """
        self.bulk_load(rows)
        if self.unique:
            previous_ok = None
            for ok, _ in self._iter_entries(0, self._count):
                if ok == previous_ok and not any(e[0] == 2 for e in ok):
                    self._build([])
                    raise UniqueViolation(
                        f"duplicate key value violates unique constraint "
                        f"{self.name!r} on {owner}({', '.join(self.columns)})"
                    )
                previous_ok = ok

    def probe(self, key: tuple) -> set[int]:
        """rids whose indexed columns equal ``key`` exactly (NULL-free)."""
        if self._has_null(key):
            return set()
        start, end = self._equal_run(ordering_key(key))
        return {rid for _, rid in self._iter_entries(start, end)}

    def would_violate(self, row: Row, ignore_rid: int | None = None) -> bool:
        if not self.unique:
            return False
        key = self.key_for(row)
        if self._has_null(key):
            return False
        start, end = self._equal_run(ordering_key(key))
        return any(r != ignore_rid for _, r in self._iter_entries(start, end))

    def rename_column(self, old: str, new: str) -> None:
        self.columns = tuple(new if c == old else c for c in self.columns)

    def __len__(self) -> int:
        return self._count

    # -------------------------------------------------------- ordered access

    def slice_bounds(
        self,
        prefix: tuple = (),
        low: Any = None,
        high: Any = None,
        incl_low: bool = True,
        incl_high: bool = True,
    ) -> tuple[int, int]:
        """[start, end) of entries matching an equality prefix + range.

        ``prefix`` equality-binds the leading columns; ``low``/``high``
        bound the next column (either side may be ``None`` = unbounded).
        Bounds compare by :func:`ordering_key_element`, so a range over a
        mixed-type column returns a *superset* of the SQL-comparable
        matches — callers re-apply the original predicate to candidates.
        """
        pre = ordering_key(prefix)
        if low is None:
            lo_key = pre
        else:
            element = ordering_key_element(low)
            lo_key = pre + ((element,) if incl_low else (element, _AFTER))
        if high is None:
            hi_key = pre + (_AFTER,)
        else:
            element = ordering_key_element(high)
            hi_key = pre + ((element, _AFTER) if incl_high else (element,))
        start = self._position((lo_key,))
        end = self._position((hi_key,))
        return start, end

    def range_rids(
        self,
        prefix: tuple = (),
        low: Any = None,
        high: Any = None,
        incl_low: bool = True,
        incl_high: bool = True,
    ) -> list[int]:
        """rids in key order for an equality-prefix + range probe."""
        start, end = self.slice_bounds(prefix, low, high, incl_low, incl_high)
        return [rid for _, rid in self._iter_entries(start, end)]

    def ordered_rids(
        self,
        reverse: bool = False,
        start: int = 0,
        end: int | None = None,
        prefix: tuple = (),
    ) -> Iterator[int]:
        """Yield rids of entries[start:end] in ORDER BY order.

        Forward order is simply entry order. ``reverse=True`` yields the
        order of a DESC sort, which is *not* a plain reversal: the
        executor's DESC keys keep the type rank ascending (numbers, then
        text, then NULLs — NULLS LAST either way) and reverse only the
        values within each rank, with ties staying in first-seen (rid)
        order. So the reverse walk visits rank classes forward, value runs
        backward, and each equal-key run forward. Only single-column
        suffixes are supported in reverse (the executor enforces this);
        ``prefix`` carries the equality-bound leading values so rank
        boundaries bisect at the right key depth.
        """
        if end is None:
            end = self._count
        if not reverse:
            for _, rid in self._iter_entries(start, end):
                yield rid
            return

        def bounded_position(search: tuple) -> int:
            # bisect within [start, end) of a sorted sequence == the
            # global bisect clamped into the window
            return min(max(self._position(search), start), end)

        pre = ordering_key(prefix)
        for rank in (0, 1, 2):
            lo = bounded_position((pre + ((rank,),),))
            hi = bounded_position((pre + ((rank + 1,),),))
            run_end = hi
            while run_end > lo:
                key = self._entry_at(run_end - 1)[0]
                run_start = min(max(self._position((key,)), lo), run_end)
                for _, rid in self._iter_entries(run_start, run_end):
                    yield rid
                run_end = run_start


class HeapTable:
    """In-memory heap of rows with attached secondary indexes."""

    def __init__(self, name: str):
        self.name = name
        self._rows: dict[int, Row] = {}
        self._next_rid = 1
        self.indexes: dict[str, HashIndex | SortedIndex] = {}
        #: identity of this heap across DROP/CREATE cycles of the same name
        self.uid = take_heap_uid()
        #: monotonically increasing change counter, bumped on every row,
        #: column, or index mutation — including those replayed by
        #: transaction undo (rollback goes through insert/update/delete/
        #: restore below), so derived caches keyed on (uid, version) are
        #: invalidated by INSERT/UPDATE/DELETE, DDL, *and* ROLLBACK alike
        self.version = 0
        #: insertion order of ``_rows`` no longer matches rid order; set
        #: only by out-of-order :meth:`restore` (undo / WAL replay) so the
        #: common :meth:`rows` scan skips the sort entirely
        self._rows_unsorted = False

    def _bump(self) -> None:
        self.version += 1

    @classmethod
    def from_snapshot(
        cls,
        name: str,
        rows: "list[tuple[int, Row]] | list[list]",
        next_rid: int,
        uid: int,
        version: int,
        indexes: "list[HashIndex | SortedIndex]",
    ) -> "HeapTable":
        """Reconstruct a heap exactly as persisted by the durable engine.

        ``rows`` must already be in rid order (snapshots are written from
        :meth:`rows`); indexes arrive as empty definitions and are
        bulk-loaded without uniqueness checks, since the snapshot captured
        a state that satisfied every constraint when written. The
        persisted ``(uid, version)`` identity is restored verbatim — and
        the process-wide uid counter advanced past it — so caches and
        persisted value catalogs fingerprinted before the restart stay
        valid after it.
        """
        heap = cls(name)
        heap.restore_state(
            rows, next_rid=next_rid, uid=uid, version=version, indexes=indexes
        )
        return heap

    def snapshot_state(self) -> dict[str, Any]:
        """Persistable dump of this heap's state (rows in rid order).

        The inverse of :meth:`restore_state`; the durable engine embeds
        this dict (JSON-compatible once rows are serialized) into its
        snapshot payload instead of reading the heap's representation
        directly.
        """
        return {
            "uid": self.uid,
            "version": self.version,
            "next_rid": self._next_rid,
            "rows": [[rid, row] for rid, row in self.rows()],
        }

    def restore_state(
        self,
        rows: "list[tuple[int, Row]] | list[list]",
        next_rid: int,
        uid: int,
        version: int,
        indexes: "list[HashIndex | SortedIndex]",
    ) -> None:
        """Overwrite this (fresh) heap's state with a persisted dump."""
        self._rows = {rid: row for rid, row in rows}
        self._next_rid = next_rid
        self.uid = uid
        self.version = version
        reserve_heap_uids(uid)
        for index in indexes:
            index.bulk_load(self._rows.items())
            self.indexes[index.name] = index

    # -------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> Iterator[tuple[int, Row]]:
        """Iterate (rid, row) pairs in rid order.

        Inserts allocate monotonically increasing rids, so dict insertion
        order already *is* rid order; only an out-of-order :meth:`restore`
        breaks the invariant, in which case the dict is re-sorted once and
        the invariant re-established. The snapshot (``list``) keeps callers
        safe from mutations performed while the iterator is live.
        """
        if self._rows_unsorted:
            self._rows = dict(sorted(self._rows.items()))
            self._rows_unsorted = False
        yield from list(self._rows.items())

    def get(self, rid: int) -> Row | None:
        return self._rows.get(rid)

    def rows_batch(
        self, batch_size: int, columns: "list[str]"
    ) -> Iterator[RowBatch]:
        """Iterate the heap as :class:`RowBatch` column slices in rid order.

        The vectorized analogue of :meth:`rows`: ``columns`` names the
        columns to materialize (the executor passes only the columns the
        statement references), and each batch holds fresh per-column value
        lists — no per-row dict copies, but the same snapshot safety,
        since live heap row dicts are never aliased. Read-only: no index
        maintenance, no WAL interaction.
        """
        if self._rows_unsorted:
            self._rows = dict(sorted(self._rows.items()))
            self._rows_unsorted = False
        items = list(self._rows.items())
        for start in range(0, len(items), batch_size):
            chunk = items[start : start + batch_size]
            yield RowBatch(
                [rid for rid, _ in chunk],
                {
                    name: [row.get(name) for _, row in chunk]
                    for name in columns
                },
                len(chunk),
            )

    def fetch_batch(
        self, rids: "list[int]", columns: "list[str]"
    ) -> RowBatch:
        """One :class:`RowBatch` for an explicit rid list (index-path
        candidates), in the given rid order; rids no longer present in
        the heap are skipped, like per-rid :meth:`get` probes."""
        rows: list[Row] = []
        present: list[int] = []
        get = self._rows.get
        for rid in rids:
            row = get(rid)
            if row is not None:
                present.append(rid)
                rows.append(row)
        return RowBatch(
            present,
            {name: [row.get(name) for row in rows] for name in columns},
            len(present),
        )

    # ---------------------------------------------------------- mutations

    def insert(self, row: Row) -> int:
        """Insert ``row`` and maintain all indexes; returns the new rid."""
        rid = self._next_rid
        self._next_rid += 1
        # index first so a uniqueness failure leaves the heap untouched
        inserted: list[HashIndex | SortedIndex] = []
        try:
            for index in self.indexes.values():
                index.insert(rid, row, owner=self.name)
                inserted.append(index)
        except UniqueViolation:
            for index in inserted:
                index.remove(rid, row)
            raise
        self._rows[rid] = dict(row)
        self._bump()
        return rid

    def restore(self, rid: int, row: Row) -> None:
        """Put back a previously deleted row under its original rid (undo)."""
        if self._rows and rid < next(reversed(self._rows)):
            self._rows_unsorted = True
        self._rows[rid] = dict(row)
        self._next_rid = max(self._next_rid, rid + 1)
        for index in self.indexes.values():
            index.insert(rid, row, owner=self.name)
        self._bump()

    def update(self, rid: int, new_row: Row) -> Row:
        """Replace the row at ``rid``; returns the old row (for undo logs)."""
        old_row = self._rows[rid]
        for index in self.indexes.values():
            if index.unique and index.key_for(new_row) != index.key_for(old_row):
                if index.would_violate(new_row, ignore_rid=rid):
                    raise UniqueViolation(
                        f"duplicate key value violates unique constraint "
                        f"{index.name!r} on {self.name}"
                    )
        for index in self.indexes.values():
            index.remove(rid, old_row)
            index.insert(rid, new_row, owner=self.name)
        self._rows[rid] = dict(new_row)
        self._bump()
        return old_row

    def delete(self, rid: int) -> Row:
        """Remove the row at ``rid``; returns it (for undo logs)."""
        row = self._rows.pop(rid)
        for index in self.indexes.values():
            index.remove(rid, row)
        self._bump()
        return row

    # ------------------------------------------------------------- indexes

    def add_index(self, index: "HashIndex | SortedIndex") -> None:
        """Attach and backfill an index; rolls back on uniqueness violation.

        Each index kind supplies its own backfill: hash indexes insert
        row-by-row (cleaning up on violation), sorted indexes sort once
        and detect duplicates by adjacency.
        """
        index.backfill(self._rows.items(), owner=self.name)
        self.indexes[index.name] = index
        # index DDL changes the heap's access paths (and its durable
        # representation), so it must move the (uid, version) fingerprint
        self._bump()

    def drop_index(self, name: str) -> "HashIndex | SortedIndex":
        index = self.indexes.pop(name)
        self._bump()
        return index

    def attach_index(self, index: "HashIndex | SortedIndex") -> None:
        """Re-attach a previously dropped index, buckets intact (undo)."""
        self.indexes[index.name] = index
        self._bump()

    def find_index(
        self, columns: tuple[str, ...]
    ) -> "HashIndex | SortedIndex | None":
        """An index exactly covering ``columns``; hash preferred (O(1) probe)."""
        found = None
        for index in self.indexes.values():
            if index.columns == columns:
                if index.kind == "hash":
                    return index
                found = found or index
        return found

    # ------------------------------------------------------ schema changes

    def add_column(self, name: str, default: Any = None) -> None:
        for row in self._rows.values():
            row[name] = default
        self._bump()

    def drop_column(self, name: str) -> None:
        for row in self._rows.values():
            row.pop(name, None)
        self._bump()

    def restore_column(self, name: str, values: dict[int, Any]) -> None:
        """Re-attach a dropped column's values by rid (undo for drop_column)."""
        for rid, row in self._rows.items():
            row[name] = values.get(rid)
        self._bump()

    def rename_column(self, old: str, new: str) -> None:
        for row in self._rows.values():
            if old in row:
                row[new] = row.pop(old)
        for index in self.indexes.values():
            index.rename_column(old, new)  # keys hold values, not names
        self._bump()
