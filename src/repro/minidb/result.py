"""Result container returned by every minidb statement execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class ResultSet:
    """Uniform result of executing one statement.

    ``columns``/``rows`` are populated for SELECT; ``rowcount`` for DML
    (number of rows affected); ``status`` is a short human/LLM-readable
    completion tag like ``"INSERT 3"`` or ``"BEGIN"``.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0
    status: str = "OK"

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def first(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1x1 result, or None for an empty result."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self, max_rows: int | None = None) -> str:
        """Plain-text rendering used in tool outputs (deterministic)."""
        if not self.columns:
            return self.status
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        lines = [" | ".join(self.columns)]
        lines.append("-+-".join("-" * len(c) for c in self.columns))
        for row in shown:
            lines.append(
                " | ".join("NULL" if v is None else str(v) for v in row)
            )
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        lines.append(f"({len(self.rows)} rows)")
        return "\n".join(lines)
