"""Recursive-descent SQL parser for minidb.

Entry points:

* :func:`parse` — parse a single statement (trailing semicolon allowed).
* :func:`parse_script` — parse a ``;``-separated script into a list.

The dialect covers the subset of SQL the BridgeScope toolkit and its
benchmarks exercise: SELECT with joins/aggregation/subqueries/set ops, the
three DML statements, core DDL, transaction control, and GRANT/REVOKE with
optional column lists.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import SQLSyntaxError
from .lexer import EOF, IDENT, NUMBER, OP, PARAM, PUNCT, STRING, Token, tokenize

_JOIN_KINDS = {"INNER", "LEFT", "RIGHT", "CROSS", "FULL"}
_PRIVILEGE_ACTIONS = {
    "SELECT",
    "INSERT",
    "UPDATE",
    "DELETE",
    "CREATE",
    "DROP",
    "ALTER",
    "ALL",
}


def parse(sql: str) -> ast.Statement:
    """Parse exactly one SQL statement. Raises :class:`SQLSyntaxError`."""
    parser = _Parser(tokenize(sql), sql)
    stmt = parser.parse_statement()
    parser.skip_semicolons()
    parser.expect_eof()
    return stmt


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated script into a statement list."""
    parser = _Parser(tokenize(sql), sql)
    statements: list[ast.Statement] = []
    parser.skip_semicolons()
    while not parser.at_eof():
        statements.append(parser.parse_statement())
        parser.skip_semicolons()
    return statements


def statement_action(stmt: ast.Statement) -> str:
    """The privilege action a statement requires (SELECT/INSERT/...)."""
    mapping = {
        ast.SelectStatement: "SELECT",
        ast.InsertStatement: "INSERT",
        ast.UpdateStatement: "UPDATE",
        ast.DeleteStatement: "DELETE",
        ast.CreateTableStatement: "CREATE",
        ast.CreateIndexStatement: "CREATE",
        ast.CreateViewStatement: "CREATE",
        ast.DropTableStatement: "DROP",
        ast.DropIndexStatement: "DROP",
        ast.DropViewStatement: "DROP",
        ast.AlterTableStatement: "ALTER",
        ast.AnalyzeStatement: "ALTER",  # maintenance: table-owner surface
    }
    for klass, action in mapping.items():
        if isinstance(stmt, klass):
            return action
    return "OTHER"


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self.tokens = tokens
        self.source = source
        self.pos = 0

    # ---------------------------------------------------------------- utils

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().kind == EOF

    def check_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == IDENT and token.value.upper() in {
            w.upper() for w in words
        }

    def match_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.match_keyword(word):
            raise self.error(f"expected {word}")

    def match_punct(self, value: str) -> bool:
        token = self.peek()
        if token.kind == PUNCT and token.value == value:
            self.advance()
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.match_punct(value):
            raise self.error(f"expected {value!r}")

    def match_op(self, *values: str) -> str | None:
        token = self.peek()
        if token.kind == OP and token.value in values:
            self.advance()
            return token.value
        return None

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.kind != IDENT:
            raise self.error(f"expected {what}")
        self.advance()
        return token.value

    def skip_semicolons(self) -> None:
        while self.match_punct(";"):
            pass

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        found = token.value or "<end of input>"
        return SQLSyntaxError(
            f"{message} near {found!r} (position {token.pos}) in: {self.source.strip()[:120]}"
        )

    # ----------------------------------------------------------- statements

    def parse_statement(self) -> ast.Statement:
        if self.match_keyword("EXPLAIN"):
            analyze = self.match_keyword("ANALYZE")
            return ast.ExplainStatement(self.parse_select(), analyze=analyze)
        if self.check_keyword("SELECT"):
            return self.parse_select()
        if self.check_keyword("INSERT"):
            return self.parse_insert()
        if self.check_keyword("UPDATE"):
            return self.parse_update()
        if self.check_keyword("DELETE"):
            return self.parse_delete()
        if self.check_keyword("CREATE"):
            return self.parse_create()
        if self.check_keyword("DROP"):
            return self.parse_drop()
        if self.check_keyword("ALTER"):
            return self.parse_alter()
        if self.match_keyword("ANALYZE"):
            table = None
            if self.peek().kind == IDENT:
                table = self.expect_identifier("table name")
            return ast.AnalyzeStatement(table)
        if self.match_keyword("BEGIN") or self.check_keyword("START"):
            if self.match_keyword("START"):
                self.expect_keyword("TRANSACTION")
            else:
                self.match_keyword("TRANSACTION")
            return ast.BeginStatement()
        if self.match_keyword("COMMIT"):
            self.match_keyword("TRANSACTION")
            return ast.CommitStatement()
        if self.match_keyword("ROLLBACK"):
            self.match_keyword("TRANSACTION")
            if self.match_keyword("TO"):
                self.match_keyword("SAVEPOINT")
                return ast.RollbackStatement(savepoint=self.expect_identifier())
            return ast.RollbackStatement()
        if self.match_keyword("SAVEPOINT"):
            return ast.SavepointStatement(self.expect_identifier())
        if self.match_keyword("RELEASE"):
            self.match_keyword("SAVEPOINT")
            return ast.ReleaseSavepointStatement(self.expect_identifier())
        if self.check_keyword("GRANT"):
            return self.parse_grant_revoke(grant=True)
        if self.check_keyword("REVOKE"):
            return self.parse_grant_revoke(grant=False)
        raise self.error("expected a SQL statement")

    # -------------------------------------------------------------- SELECT

    def parse_select(self) -> ast.SelectStatement:
        self.expect_keyword("SELECT")
        distinct = False
        if self.match_keyword("DISTINCT"):
            distinct = True
        elif self.match_keyword("ALL"):
            pass

        items = [self.parse_select_item()]
        while self.match_punct(","):
            items.append(self.parse_select_item())

        from_sources: list[ast.TableRef | ast.SubqueryRef] = []
        joins: list[ast.Join] = []
        if self.match_keyword("FROM"):
            from_sources.append(self.parse_table_source())
            while True:
                if self.match_punct(","):
                    from_sources.append(self.parse_table_source())
                    continue
                join = self.try_parse_join()
                if join is None:
                    break
                joins.append(join)

        where = self.parse_expression() if self.match_keyword("WHERE") else None

        group_by: list[ast.Expr] = []
        if self.match_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self.match_punct(","):
                group_by.append(self.parse_expression())

        having = self.parse_expression() if self.match_keyword("HAVING") else None

        stmt = ast.SelectStatement(
            items=items,
            from_sources=from_sources,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

        set_kind = None
        if self.match_keyword("UNION"):
            set_kind = "UNION ALL" if self.match_keyword("ALL") else "UNION"
        elif self.match_keyword("INTERSECT"):
            set_kind = "INTERSECT"
        elif self.match_keyword("EXCEPT"):
            set_kind = "EXCEPT"
        if set_kind is not None:
            rhs = self.parse_select()
            # ORDER BY / LIMIT written after the rhs bind to the whole set
            # operation (standard SQL); hoist them to the outer statement.
            stmt.set_op = (set_kind, rhs)
            stmt.order_by, rhs.order_by = rhs.order_by, []
            stmt.limit, rhs.limit = rhs.limit, None
            stmt.offset, rhs.offset = rhs.offset, None
            return stmt

        if self.match_keyword("ORDER"):
            self.expect_keyword("BY")
            stmt.order_by.append(self.parse_order_item())
            while self.match_punct(","):
                stmt.order_by.append(self.parse_order_item())

        if self.match_keyword("LIMIT"):
            stmt.limit = self.parse_nonnegative_int("LIMIT")
            if self.match_keyword("OFFSET"):
                stmt.offset = self.parse_nonnegative_int("OFFSET")
        elif self.match_keyword("OFFSET"):
            stmt.offset = self.parse_nonnegative_int("OFFSET")

        return stmt

    def parse_nonnegative_int(self, clause: str) -> int:
        token = self.peek()
        if token.kind != NUMBER:
            raise self.error(f"expected integer after {clause}")
        self.advance()
        try:
            value = int(token.value)
        except ValueError:
            raise self.error(f"{clause} requires an integer") from None
        if value < 0:
            raise self.error(f"{clause} must be non-negative")
        return value

    def parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        # bare * or table.*
        if token.kind == OP and token.value == "*":
            self.advance()
            return ast.SelectItem(ast.Star())
        if (
            token.kind == IDENT
            and self.peek(1).kind == PUNCT
            and self.peek(1).value == "."
            and self.peek(2).kind == OP
            and self.peek(2).value == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table=token.value))
        expr = self.parse_expression()
        alias = None
        if self.match_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().kind == IDENT and not self._is_clause_boundary():
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    _CLAUSE_WORDS = {
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "OFFSET",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "ON",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "CROSS",
        "JOIN",
        "AND",
        "OR",
        "AS",
        "SET",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "ASC",
        "DESC",
    }

    def _is_clause_boundary(self) -> bool:
        token = self.peek()
        return token.kind == IDENT and token.value.upper() in self._CLAUSE_WORDS

    def parse_table_source(self) -> ast.TableRef | ast.SubqueryRef:
        if self.match_punct("("):
            subquery = self.parse_select()
            self.expect_punct(")")
            self.match_keyword("AS")
            alias = self.expect_identifier("subquery alias")
            return ast.SubqueryRef(subquery, alias)
        name = self.expect_identifier("table name")
        if self.match_punct("."):
            # dotted relations name the observability system views
            # (system.statements etc.); user tables cannot contain a dot
            # unless quoted, in which case the lexer already produced a
            # single IDENT token and no '.' punct follows
            name = f"{name}.{self.expect_identifier('table name')}"
        alias = None
        if self.match_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.peek().kind == IDENT and not self._is_clause_boundary():
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def try_parse_join(self) -> ast.Join | None:
        kind = None
        if self.check_keyword("JOIN"):
            self.advance()
            kind = "INNER"
        else:
            token = self.peek()
            if token.kind == IDENT and token.value.upper() in _JOIN_KINDS:
                kind = token.value.upper()
                self.advance()
                self.match_keyword("OUTER")
                self.expect_keyword("JOIN")
                if kind == "FULL":
                    raise self.error("FULL OUTER JOIN is not supported")
        if kind is None:
            return None
        source = self.parse_table_source()
        condition = None
        if kind != "CROSS":
            self.expect_keyword("ON")
            condition = self.parse_expression()
        return ast.Join(kind, source, condition)

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.match_keyword("DESC"):
            descending = True
        else:
            self.match_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # ----------------------------------------------------------------- DML

    def parse_insert(self) -> ast.InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_identifier("table name")
        columns: list[str] | None = None
        if self.match_punct("("):
            columns = [self.expect_identifier("column name")]
            while self.match_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        if self.check_keyword("SELECT"):
            return ast.InsertStatement(table, columns, rows=None, select=self.parse_select())
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.match_punct(","):
            rows.append(self.parse_value_row())
        return ast.InsertStatement(table, columns, rows=rows)

    def parse_value_row(self) -> list[ast.Expr]:
        self.expect_punct("(")
        row = [self.parse_expression()]
        while self.match_punct(","):
            row.append(self.parse_expression())
        self.expect_punct(")")
        return row

    def parse_update(self) -> ast.UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.expect_identifier("table name")
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.match_punct(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expression() if self.match_keyword("WHERE") else None
        return ast.UpdateStatement(table, assignments, where)

    def parse_assignment(self) -> tuple[str, ast.Expr]:
        column = self.expect_identifier("column name")
        if not self.match_op("="):
            raise self.error("expected '=' in SET clause")
        return column, self.parse_expression()

    def parse_delete(self) -> ast.DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")
        where = self.parse_expression() if self.match_keyword("WHERE") else None
        return ast.DeleteStatement(table, where)

    # ----------------------------------------------------------------- DDL

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.match_keyword("TABLE"):
            return self.parse_create_table()
        if self.match_keyword("UNIQUE"):
            self.expect_keyword("INDEX")
            return self.parse_create_index(unique=True)
        if self.match_keyword("INDEX"):
            return self.parse_create_index(unique=False)
        or_replace = False
        if self.match_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        if self.match_keyword("VIEW"):
            name = self.expect_identifier("view name")
            self.expect_keyword("AS")
            return ast.CreateViewStatement(name, self.parse_select(), or_replace)
        raise self.error("expected TABLE, INDEX, or VIEW after CREATE")

    def parse_create_table(self) -> ast.CreateTableStatement:
        if_not_exists = self._match_if_not_exists()
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        stmt = ast.CreateTableStatement(table, columns=[], if_not_exists=if_not_exists)
        while True:
            if self.check_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                stmt.primary_key = self.parse_paren_name_list()
            elif self.check_keyword("FOREIGN"):
                self.advance()
                self.expect_keyword("KEY")
                columns = self.parse_paren_name_list()
                self.expect_keyword("REFERENCES")
                ref_table = self.expect_identifier("referenced table")
                ref_columns = (
                    self.parse_paren_name_list()
                    if self.peek().kind == PUNCT and self.peek().value == "("
                    else []
                )
                stmt.foreign_keys.append(
                    ast.ForeignKeyDef(columns, ref_table, ref_columns)
                )
            elif self.check_keyword("UNIQUE") and self.peek(1).value == "(":
                self.advance()
                stmt.uniques.append(self.parse_paren_name_list())
            elif self.check_keyword("CHECK") and self.peek(1).value == "(":
                self.advance()
                self.expect_punct("(")
                stmt.checks.append(self.parse_expression())
                self.expect_punct(")")
            else:
                stmt.columns.append(self.parse_column_def())
            if not self.match_punct(","):
                break
        self.expect_punct(")")
        return stmt

    def _match_if_not_exists(self) -> bool:
        if self.check_keyword("IF"):
            self.advance()
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            return True
        return False

    def _match_if_exists(self) -> bool:
        if self.check_keyword("IF"):
            self.advance()
            self.expect_keyword("EXISTS")
            return True
        return False

    def parse_paren_name_list(self) -> list[str]:
        self.expect_punct("(")
        names = [self.expect_identifier("name")]
        while self.match_punct(","):
            names.append(self.expect_identifier("name"))
        self.expect_punct(")")
        return names

    def parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier("column name")
        declared = self.expect_identifier("column type")
        # optional length: VARCHAR(40) / NUMERIC(10,2)
        if self.peek().kind == PUNCT and self.peek().value == "(":
            self.advance()
            length_parts = [self.advance().value]
            while self.match_punct(","):
                length_parts.append(self.advance().value)
            self.expect_punct(")")
            declared = f"{declared}({','.join(length_parts)})"
        column = ast.ColumnDef(name, declared)
        while True:
            if self.match_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                column.primary_key = True
            elif self.check_keyword("NOT"):
                self.advance()
                self.expect_keyword("NULL")
                column.not_null = True
            elif self.match_keyword("NULL"):
                pass
            elif self.match_keyword("UNIQUE"):
                column.unique = True
            elif self.match_keyword("DEFAULT"):
                column.default = self.parse_primary()
            elif self.check_keyword("CHECK"):
                self.advance()
                self.expect_punct("(")
                column.check = self.parse_expression()
                self.expect_punct(")")
            elif self.match_keyword("REFERENCES"):
                ref_table = self.expect_identifier("referenced table")
                ref_column = ""
                if self.match_punct("("):
                    ref_column = self.expect_identifier("referenced column")
                    self.expect_punct(")")
                column.references = (ref_table, ref_column)
            else:
                break
        return column

    def parse_create_index(self, unique: bool) -> ast.CreateIndexStatement:
        if_not_exists = self._match_if_not_exists()
        name = self.expect_identifier("index name")
        self.expect_keyword("ON")
        table = self.expect_identifier("table name")
        using = None
        if self.match_keyword("USING"):
            method = self.expect_identifier("index method").upper()
            if method not in ("BTREE", "HASH"):
                raise self.error(f"unknown index method {method!r}")
            using = method
        columns = self.parse_paren_name_list()
        return ast.CreateIndexStatement(
            name, table, columns, unique, if_not_exists, using
        )

    def parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.match_keyword("TABLE"):
            if_exists = self._match_if_exists()
            tables = [self.expect_identifier("table name")]
            while self.match_punct(","):
                tables.append(self.expect_identifier("table name"))
            cascade = bool(self.match_keyword("CASCADE"))
            self.match_keyword("RESTRICT")
            return ast.DropTableStatement(tables, if_exists, cascade)
        if self.match_keyword("INDEX"):
            if_exists = self._match_if_exists()
            return ast.DropIndexStatement(self.expect_identifier("index name"), if_exists)
        if self.match_keyword("VIEW"):
            if_exists = self._match_if_exists()
            names = [self.expect_identifier("view name")]
            while self.match_punct(","):
                names.append(self.expect_identifier("view name"))
            return ast.DropViewStatement(names, if_exists)
        if self.match_keyword("DATABASE"):
            # deliberately parsed so the security layer can reject it by rule
            name = self.expect_identifier("database name")
            return ast.DropTableStatement([name], if_exists=False, cascade=True)
        raise self.error("expected TABLE, INDEX, VIEW, or DATABASE after DROP")

    def parse_alter(self) -> ast.AlterTableStatement:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_identifier("table name")
        if self.match_keyword("ADD"):
            self.match_keyword("COLUMN")
            return ast.AlterTableStatement(
                table, "ADD_COLUMN", column=self.parse_column_def()
            )
        if self.match_keyword("DROP"):
            self.match_keyword("COLUMN")
            return ast.AlterTableStatement(
                table, "DROP_COLUMN", old_name=self.expect_identifier("column name")
            )
        if self.match_keyword("RENAME"):
            if self.match_keyword("TO"):
                return ast.AlterTableStatement(
                    table, "RENAME_TABLE", new_name=self.expect_identifier("new name")
                )
            self.match_keyword("COLUMN")
            old = self.expect_identifier("column name")
            self.expect_keyword("TO")
            new = self.expect_identifier("new column name")
            return ast.AlterTableStatement(
                table, "RENAME_COLUMN", old_name=old, new_name=new
            )
        raise self.error("expected ADD, DROP, or RENAME after ALTER TABLE")

    # -------------------------------------------------------- GRANT/REVOKE

    def parse_grant_revoke(self, grant: bool) -> ast.Statement:
        self.expect_keyword("GRANT" if grant else "REVOKE")
        actions: list[str] = []
        columns: list[str] | None = None
        while True:
            action = self.expect_identifier("privilege action").upper()
            if action not in _PRIVILEGE_ACTIONS:
                raise self.error(f"unknown privilege action {action!r}")
            actions.append(action)
            if action == "ALL":
                self.match_keyword("PRIVILEGES")
            if self.peek().kind == PUNCT and self.peek().value == "(":
                columns = self.parse_paren_name_list()
            if not self.match_punct(","):
                break
        self.expect_keyword("ON")
        self.match_keyword("TABLE")
        objects = [self._grant_object()]
        while self.match_punct(","):
            objects.append(self._grant_object())
        self.expect_keyword("TO" if grant else "FROM")
        grantee = self.expect_identifier("grantee")
        if grant:
            return ast.GrantStatement(actions, columns, objects, grantee)
        return ast.RevokeStatement(actions, columns, objects, grantee)

    def _grant_object(self) -> str:
        """An object name in GRANT/REVOKE; ``*`` means database-wide."""
        if self.match_op("*"):
            return "*"
        return self.expect_identifier("object name")

    # ---------------------------------------------------------- expressions

    def parse_expression(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.match_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.match_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.match_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        if self.check_keyword("EXISTS"):
            self.advance()
            self.expect_punct("(")
            subquery = self.parse_select()
            self.expect_punct(")")
            return ast.ExistsExpr(subquery)
        left = self.parse_comparison()
        # postfix predicates: IS [NOT] NULL, [NOT] IN/BETWEEN/LIKE
        while True:
            if self.match_keyword("IS"):
                negated = bool(self.match_keyword("NOT"))
                self.expect_keyword("NULL")
                left = ast.IsNullExpr(left, negated)
                continue
            negated = False
            save = self.pos
            if self.match_keyword("NOT"):
                negated = True
            if self.match_keyword("IN"):
                left = self.parse_in_tail(left, negated)
                continue
            if self.match_keyword("BETWEEN"):
                low = self.parse_comparison()
                self.expect_keyword("AND")
                high = self.parse_comparison()
                left = ast.BetweenExpr(left, low, high, negated)
                continue
            if self.match_keyword("LIKE"):
                left = ast.LikeExpr(left, self.parse_comparison(), negated)
                continue
            if self.match_keyword("ILIKE"):
                left = ast.LikeExpr(
                    left, self.parse_comparison(), negated, case_insensitive=True
                )
                continue
            if negated:
                self.pos = save  # NOT belonged to an enclosing parse_not
            break
        return left

    def parse_in_tail(self, operand: ast.Expr, negated: bool) -> ast.InExpr:
        self.expect_punct("(")
        if self.check_keyword("SELECT"):
            subquery = self.parse_select()
            self.expect_punct(")")
            return ast.InExpr(operand, subquery, negated)
        candidates = [self.parse_expression()]
        while self.match_punct(","):
            candidates.append(self.parse_expression())
        self.expect_punct(")")
        return ast.InExpr(operand, candidates, negated)

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        op = self.match_op("=", "<>", "!=", "<", "<=", ">", ">=")
        if op:
            if op == "!=":
                op = "<>"
            return ast.BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            op = self.match_op("+", "-", "||")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            op = self.match_op("*", "/", "%")
            if not op:
                return left
            left = ast.BinaryOp(op, left, self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        op = self.match_op("-", "+")
        if op:
            return ast.UnaryOp(op, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.kind == STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.kind == PARAM:
            raise self.error("positional parameters are not supported")
        if token.kind == PUNCT and token.value == "(":
            self.advance()
            if self.check_keyword("SELECT"):
                subquery = self.parse_select()
                self.expect_punct(")")
                return ast.ScalarSubquery(subquery)
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        if token.kind == IDENT:
            upper = token.value.upper()
            if upper == "NULL":
                self.advance()
                return ast.Literal(None)
            if upper == "TRUE":
                self.advance()
                return ast.Literal(True)
            if upper == "FALSE":
                self.advance()
                return ast.Literal(False)
            if upper == "CASE":
                return self.parse_case()
            if upper == "CAST":
                return self.parse_cast()
            if upper == "NOT":
                self.advance()
                return ast.UnaryOp("NOT", self.parse_not())
            # function call?
            if self.peek(1).kind == PUNCT and self.peek(1).value == "(":
                return self.parse_function_call()
            return self.parse_column_ref()
        raise self.error("expected an expression")

    def parse_case(self) -> ast.CaseExpr:
        self.expect_keyword("CASE")
        operand = None
        if not self.check_keyword("WHEN"):
            operand = self.parse_expression()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.match_keyword("WHEN"):
            condition = self.parse_expression()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expression()))
        if not whens:
            raise self.error("CASE requires at least one WHEN branch")
        default = self.parse_expression() if self.match_keyword("ELSE") else None
        self.expect_keyword("END")
        return ast.CaseExpr(operand, whens, default)

    def parse_cast(self) -> ast.CastExpr:
        self.expect_keyword("CAST")
        self.expect_punct("(")
        operand = self.parse_expression()
        self.expect_keyword("AS")
        target = self.expect_identifier("type name")
        if self.peek().kind == PUNCT and self.peek().value == "(":
            self.advance()
            length = self.advance().value
            self.expect_punct(")")
            target = f"{target}({length})"
        self.expect_punct(")")
        return ast.CastExpr(operand, target)

    def parse_function_call(self) -> ast.FunctionCall:
        name = self.advance().value.upper()
        self.expect_punct("(")
        distinct = bool(self.match_keyword("DISTINCT"))
        args: list[ast.Expr] = []
        if not (self.peek().kind == PUNCT and self.peek().value == ")"):
            if self.peek().kind == OP and self.peek().value == "*":
                self.advance()
                args.append(ast.Star())
            else:
                args.append(self.parse_expression())
                while self.match_punct(","):
                    args.append(self.parse_expression())
        self.expect_punct(")")
        return ast.FunctionCall(name, args, distinct)

    def parse_column_ref(self) -> ast.ColumnRef:
        first = self.expect_identifier("column name")
        if self.peek().kind == PUNCT and self.peek().value == ".":
            self.advance()
            second = self.expect_identifier("column name")
            return ast.ColumnRef(second, table=first)
        return ast.ColumnRef(first)
