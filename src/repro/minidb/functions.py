"""Builtin SQL functions for minidb.

Two families:

* **Scalar functions** — evaluated per row by the expression evaluator.
  Each takes a list of already-evaluated argument values. Most follow SQL
  NULL propagation (NULL in → NULL out) except where SQL says otherwise
  (COALESCE, NULLIF, CONCAT treating NULL as empty would be MySQL-ish; we
  follow PostgreSQL and propagate).
* **Aggregate functions** — implemented as accumulator classes consumed by
  the executor's GROUP BY machinery.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from .errors import ExecutionError

# --------------------------------------------------------------------------
# scalar functions
# --------------------------------------------------------------------------


def _nullprop(fn: Callable[..., Any]) -> Callable[[list[Any]], Any]:
    """Wrap ``fn`` so that any NULL argument yields NULL."""

    def wrapper(args: list[Any]) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


def _arity(name: str, args: list[Any], low: int, high: int | None = None) -> None:
    high = low if high is None else high
    if not (low <= len(args) <= high):
        raise ExecutionError(
            f"{name}() expects {low}"
            + (f"..{high}" if high != low else "")
            + f" arguments, got {len(args)}"
        )


def _fn_coalesce(args: list[Any]) -> Any:
    for value in args:
        if value is not None:
            return value
    return None


def _fn_nullif(args: list[Any]) -> Any:
    _arity("NULLIF", args, 2)
    left, right = args
    if left is not None and right is not None and left == right:
        return None
    return left


def _fn_round(args: list[Any]) -> Any:
    _arity("ROUND", args, 1, 2)
    if args[0] is None:
        return None
    digits = 0 if len(args) == 1 else args[1]
    if digits is None:
        return None
    result = round(float(args[0]), int(digits))
    return int(result) if digits == 0 else result


def _fn_substr(args: list[Any]) -> Any:
    _arity("SUBSTR", args, 2, 3)
    if any(a is None for a in args):
        return None
    text = str(args[0])
    start = int(args[1])  # SQL is 1-based
    begin = max(start - 1, 0)
    if len(args) == 3:
        length = int(args[2])
        if length < 0:
            raise ExecutionError("SUBSTR() length must be non-negative")
        return text[begin : begin + length]
    return text[begin:]


def _fn_concat(args: list[Any]) -> Any:
    # PostgreSQL CONCAT skips NULLs
    return "".join(str(a) for a in args if a is not None)


def _fn_replace(text: str, old: str, new: str) -> str:
    return str(text).replace(str(old), str(new))


def _fn_power(base: float, exponent: float) -> float:
    return float(base) ** float(exponent)


def _fn_sqrt(value: float) -> float:
    if value < 0:
        raise ExecutionError("SQRT() of a negative number")
    return math.sqrt(value)


def _fn_ln(value: float) -> float:
    if value <= 0:
        raise ExecutionError("LN() of a non-positive number")
    return math.log(value)


def _fn_sign(value: float) -> int:
    if value > 0:
        return 1
    if value < 0:
        return -1
    return 0


def _fn_instr(haystack: str, needle: str) -> int:
    return str(haystack).find(str(needle)) + 1


def _fn_date_part(part: str, date_text: str) -> int:
    """EXTRACT-style helper over ISO date strings (YYYY-MM-DD...)."""
    part = str(part).lower()
    text = str(date_text)
    try:
        if part == "year":
            return int(text[0:4])
        if part == "month":
            return int(text[5:7])
        if part == "day":
            return int(text[8:10])
    except ValueError:
        raise ExecutionError(f"malformed date {date_text!r}") from None
    raise ExecutionError(f"unsupported date part {part!r}")


SCALAR_FUNCTIONS: dict[str, Callable[[list[Any]], Any]] = {
    "UPPER": _nullprop(lambda s: str(s).upper()),
    "LOWER": _nullprop(lambda s: str(s).lower()),
    "LENGTH": _nullprop(lambda s: len(str(s))),
    "TRIM": _nullprop(lambda s: str(s).strip()),
    "LTRIM": _nullprop(lambda s: str(s).lstrip()),
    "RTRIM": _nullprop(lambda s: str(s).rstrip()),
    "ABS": _nullprop(abs),
    "CEIL": _nullprop(lambda x: math.ceil(x)),
    "CEILING": _nullprop(lambda x: math.ceil(x)),
    "FLOOR": _nullprop(lambda x: math.floor(x)),
    "SQRT": _nullprop(_fn_sqrt),
    "POWER": _nullprop(_fn_power),
    "POW": _nullprop(_fn_power),
    "EXP": _nullprop(lambda x: math.exp(x)),
    "LN": _nullprop(_fn_ln),
    "MOD": _nullprop(lambda a, b: a % b),
    "SIGN": _nullprop(_fn_sign),
    "REPLACE": _nullprop(_fn_replace),
    "INSTR": _nullprop(_fn_instr),
    "REVERSE": _nullprop(lambda s: str(s)[::-1]),
    "DATE_PART": _nullprop(_fn_date_part),
    "ROUND": _fn_round,
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "COALESCE": _fn_coalesce,
    "IFNULL": _fn_coalesce,
    "NULLIF": _fn_nullif,
    "CONCAT": _fn_concat,
}


# --------------------------------------------------------------------------
# aggregate functions
# --------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE", "GROUP_CONCAT"}
)


class Aggregate:
    """Accumulator protocol: feed values with :meth:`add`, read :meth:`result`."""

    def __init__(self, distinct: bool = False):
        self.distinct = distinct
        self._seen: set[Any] | None = set() if distinct else None

    def _admit(self, value: Any) -> bool:
        """Distinct filtering; returns whether the value should be counted."""
        if self._seen is None:
            return True
        if value in self._seen:
            return False
        self._seen.add(value)
        return True

    def add(self, value: Any) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) — counts non-NULL values. COUNT(*) feeds a sentinel."""

    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._admit(value):
            self.count += 1

    def result(self) -> int:
        return self.count


class SumAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self.total: float | int | None = None

    def add(self, value: Any) -> None:
        if value is None or not self._admit(value):
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"SUM() requires numeric input, got {value!r}")
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class AvgAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None or not self._admit(value):
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"AVG() requires numeric input, got {value!r}")
        self.total += value
        self.count += 1

    def result(self) -> float | None:
        if self.count == 0:
            return None
        return self.total / self.count


class MinAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class MaxAggregate(Aggregate):
    def __init__(self, distinct: bool = False):
        super().__init__(distinct)
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self) -> Any:
        return self.best


class StddevAggregate(Aggregate):
    """Sample standard deviation (matches PostgreSQL's STDDEV)."""

    def __init__(self, distinct: bool = False, variance: bool = False):
        super().__init__(distinct)
        self.values: list[float] = []
        self.variance_only = variance

    def add(self, value: Any) -> None:
        if value is None or not self._admit(value):
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"STDDEV() requires numeric input, got {value!r}")
        self.values.append(float(value))

    def result(self) -> float | None:
        n = len(self.values)
        if n < 2:
            return None
        mean = sum(self.values) / n
        variance = sum((v - mean) ** 2 for v in self.values) / (n - 1)
        return variance if self.variance_only else math.sqrt(variance)


class GroupConcatAggregate(Aggregate):
    def __init__(self, distinct: bool = False, separator: str = ","):
        super().__init__(distinct)
        self.parts: list[str] = []
        self.separator = separator

    def add(self, value: Any) -> None:
        if value is None or not self._admit(value):
            return
        self.parts.append(str(value))

    def result(self) -> str | None:
        if not self.parts:
            return None
        return self.separator.join(self.parts)


def make_aggregate(name: str, distinct: bool) -> Aggregate:
    """Instantiate the accumulator for aggregate function ``name``."""
    if name == "COUNT":
        return CountAggregate(distinct)
    if name == "SUM":
        return SumAggregate(distinct)
    if name == "AVG":
        return AvgAggregate(distinct)
    if name == "MIN":
        return MinAggregate(distinct)
    if name == "MAX":
        return MaxAggregate(distinct)
    if name == "STDDEV":
        return StddevAggregate(distinct)
    if name == "VARIANCE":
        return StddevAggregate(distinct, variance=True)
    if name == "GROUP_CONCAT":
        return GroupConcatAggregate(distinct)
    raise ExecutionError(f"unknown aggregate function {name}()")
