"""Static analysis of parsed SQL statements.

Answers, without executing anything: *which privilege action does this
statement need, on which objects, touching which columns?* This single
analysis is shared by two security layers:

* minidb's own privilege enforcement (database-side), and
* BridgeScope's object-level tool verification (user-side policy), per
  Section 2.3(2) of the paper.

Column attribution is conservative: an unqualified column that exists in
several FROM tables is attributed to all of them, and ``SELECT *`` claims
every column of every source. Over-attribution can only make security
checks stricter, never looser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .catalog import Catalog


@dataclass
class ObjectAccess:
    """One object touched by a statement, with the action and column set."""

    action: str
    obj: str
    columns: set[str] = field(default_factory=set)
    whole_object: bool = False  # SELECT * or DDL — needs the full object

    def column_set(self) -> set[str] | None:
        """Columns needed for a privilege check (None = whole object)."""
        if self.whole_object:
            return None
        return self.columns or None


@dataclass
class StatementAnalysis:
    """Full access footprint of a statement."""

    action: str  # the primary action (what tool should run it)
    accesses: list[ObjectAccess] = field(default_factory=list)
    is_read_only: bool = True
    is_ddl: bool = False
    is_transaction_control: bool = False

    def objects(self) -> list[str]:
        seen: list[str] = []
        for access in self.accesses:
            if access.obj not in seen:
                seen.append(access.obj)
        return seen


_WRITE_ACTIONS = {"INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER"}


def analyze(stmt: ast.Statement, catalog: Catalog | None = None) -> StatementAnalysis:
    """Compute the access footprint of ``stmt``.

    ``catalog`` (optional) improves column attribution for unqualified
    references and resolves view definitions to their underlying tables'
    *view object* (privileges in minidb attach to the view itself, as in
    PostgreSQL, so no recursion into the view body is done here).
    """
    analyzer = _Analyzer(catalog)
    return analyzer.run(stmt)


class _Analyzer:
    def __init__(self, catalog: Catalog | None):
        self.catalog = catalog
        self.accesses: list[ObjectAccess] = []

    def run(self, stmt: ast.Statement) -> StatementAnalysis:
        if isinstance(stmt, ast.SelectStatement):
            self._analyze_select(stmt)
            return self._finish("SELECT", read_only=True)
        if isinstance(stmt, ast.ExplainStatement):
            self._analyze_select(stmt.select)
            return self._finish("SELECT", read_only=True)
        if isinstance(stmt, ast.InsertStatement):
            access = self._access("INSERT", stmt.table)
            if stmt.columns:
                access.columns.update(c.lower() for c in stmt.columns)
            else:
                access.whole_object = True
            if stmt.select is not None:
                self._analyze_select(stmt.select)
            return self._finish("INSERT", read_only=False)
        if isinstance(stmt, ast.UpdateStatement):
            access = self._access("UPDATE", stmt.table)
            access.columns.update(c.lower() for c, _ in stmt.assignments)
            binding_map = {stmt.table.lower(): stmt.table}
            for _, expr in stmt.assignments:
                self._walk_expr(expr, binding_map, read_action="SELECT")
            if stmt.where is not None:
                self._walk_expr(stmt.where, binding_map, read_action="SELECT")
            return self._finish("UPDATE", read_only=False)
        if isinstance(stmt, ast.DeleteStatement):
            self._access("DELETE", stmt.table).whole_object = True
            if stmt.where is not None:
                self._walk_expr(
                    stmt.where, {stmt.table.lower(): stmt.table}, read_action="SELECT"
                )
            return self._finish("DELETE", read_only=False)
        if isinstance(stmt, ast.CreateTableStatement):
            self._access("CREATE", stmt.table).whole_object = True
            for fk in stmt.foreign_keys:
                self._access("SELECT", fk.ref_table).whole_object = True
            for cdef in stmt.columns:
                if cdef.references:
                    self._access("SELECT", cdef.references[0]).whole_object = True
            return self._finish("CREATE", read_only=False, ddl=True)
        if isinstance(stmt, ast.CreateIndexStatement):
            self._access("CREATE", stmt.table).whole_object = True
            return self._finish("CREATE", read_only=False, ddl=True)
        if isinstance(stmt, ast.CreateViewStatement):
            self._access("CREATE", stmt.name).whole_object = True
            self._analyze_select(stmt.select)
            return self._finish("CREATE", read_only=False, ddl=True)
        if isinstance(stmt, ast.DropTableStatement):
            for name in stmt.tables:
                self._access("DROP", name).whole_object = True
            return self._finish("DROP", read_only=False, ddl=True)
        if isinstance(stmt, ast.DropIndexStatement):
            obj = stmt.name
            if self.catalog is not None and stmt.name.lower() in self.catalog.indexes:
                obj = self.catalog.index(stmt.name).table
            self._access("DROP", obj).whole_object = True
            return self._finish("DROP", read_only=False, ddl=True)
        if isinstance(stmt, ast.DropViewStatement):
            for name in stmt.names:
                self._access("DROP", name).whole_object = True
            return self._finish("DROP", read_only=False, ddl=True)
        if isinstance(stmt, ast.AlterTableStatement):
            self._access("ALTER", stmt.table).whole_object = True
            return self._finish("ALTER", read_only=False, ddl=True)
        if isinstance(
            stmt,
            (
                ast.BeginStatement,
                ast.CommitStatement,
                ast.RollbackStatement,
                ast.SavepointStatement,
                ast.ReleaseSavepointStatement,
            ),
        ):
            result = self._finish("TRANSACTION", read_only=True)
            result.is_transaction_control = True
            return result
        if isinstance(stmt, ast.AnalyzeStatement):
            # maintenance runs on the table-owner (ALTER) surface; a bare
            # ANALYZE targets every table the catalog knows about
            if stmt.table is not None:
                self._access("ALTER", stmt.table).whole_object = True
            elif self.catalog is not None:
                for schema in self.catalog.tables.values():
                    self._access("ALTER", schema.name).whole_object = True
            return self._finish("ALTER", read_only=False)
        if isinstance(stmt, (ast.GrantStatement, ast.RevokeStatement)):
            for obj in stmt.objects:
                self._access("GRANT", obj).whole_object = True
            return self._finish("GRANT", read_only=False)
        return self._finish("OTHER", read_only=False)

    # ------------------------------------------------------------- helpers

    def _finish(
        self, action: str, read_only: bool, ddl: bool = False
    ) -> StatementAnalysis:
        return StatementAnalysis(
            action=action,
            accesses=self.accesses,
            is_read_only=read_only,
            is_ddl=ddl,
        )

    def _access(self, action: str, obj: str) -> ObjectAccess:
        key = obj.lower()
        for access in self.accesses:
            if access.action == action and access.obj == key:
                return access
        access = ObjectAccess(action, key)
        self.accesses.append(access)
        return access

    def _analyze_select(self, stmt: ast.SelectStatement) -> None:
        binding_map: dict[str, str] = {}  # binding (lower) -> object name (lower)
        for source in stmt.from_sources:
            self._bind_source(source, binding_map)
        for join in stmt.joins:
            self._bind_source(join.source, binding_map)

        for item in stmt.items:
            if isinstance(item.expr, ast.Star):
                self._claim_star(item.expr, binding_map)
            else:
                self._walk_expr(item.expr, binding_map, read_action="SELECT")
        for expr in (stmt.where, stmt.having):
            if expr is not None:
                self._walk_expr(expr, binding_map, read_action="SELECT")
        for expr in stmt.group_by:
            self._walk_expr(expr, binding_map, read_action="SELECT")
        for order in stmt.order_by:
            self._walk_expr(order.expr, binding_map, read_action="SELECT")
        for join in stmt.joins:
            if join.condition is not None:
                self._walk_expr(join.condition, binding_map, read_action="SELECT")
        if stmt.set_op is not None:
            self._analyze_select(stmt.set_op[1])

    def _bind_source(
        self, source: "ast.TableRef | ast.SubqueryRef", binding_map: dict[str, str]
    ) -> None:
        if isinstance(source, ast.SubqueryRef):
            self._analyze_select(source.subquery)
            return
        self._access("SELECT", source.name)
        binding_map[source.binding.lower()] = source.name.lower()

    def _claim_star(self, star: ast.Star, binding_map: dict[str, str]) -> None:
        if star.table:
            obj = binding_map.get(star.table.lower(), star.table.lower())
            self._access("SELECT", obj).whole_object = True
        else:
            for obj in set(binding_map.values()):
                self._access("SELECT", obj).whole_object = True

    def _attribute_column(
        self, ref: ast.ColumnRef, binding_map: dict[str, str], action: str
    ) -> None:
        if ref.table:
            obj = binding_map.get(ref.table.lower())
            if obj is None:
                return  # correlated reference to an outer query's binding
            self._access(action, obj).columns.add(ref.name.lower())
            return
        # unqualified: attribute to every table that (per catalog) has it,
        # or to all tables when no catalog is available
        candidates = []
        for obj in set(binding_map.values()):
            if self.catalog is not None and self.catalog.has_table(obj):
                if self.catalog.table(obj).has_column(ref.name):
                    candidates.append(obj)
            else:
                candidates.append(obj)
        for obj in candidates:
            self._access(action, obj).columns.add(ref.name.lower())

    def _walk_expr(
        self, expr: ast.Expr, binding_map: dict[str, str], read_action: str
    ) -> None:
        if isinstance(expr, ast.ColumnRef):
            self._attribute_column(expr, binding_map, read_action)
        elif isinstance(expr, ast.Star):
            self._claim_star(expr, binding_map)
        elif isinstance(expr, ast.BinaryOp):
            self._walk_expr(expr.left, binding_map, read_action)
            self._walk_expr(expr.right, binding_map, read_action)
        elif isinstance(expr, ast.UnaryOp):
            self._walk_expr(expr.operand, binding_map, read_action)
        elif isinstance(expr, ast.FunctionCall):
            for arg in expr.args:
                self._walk_expr(arg, binding_map, read_action)
        elif isinstance(expr, ast.CaseExpr):
            if expr.operand is not None:
                self._walk_expr(expr.operand, binding_map, read_action)
            for when, then in expr.whens:
                self._walk_expr(when, binding_map, read_action)
                self._walk_expr(then, binding_map, read_action)
            if expr.default is not None:
                self._walk_expr(expr.default, binding_map, read_action)
        elif isinstance(expr, ast.InExpr):
            self._walk_expr(expr.operand, binding_map, read_action)
            if isinstance(expr.candidates, ast.SelectStatement):
                self._analyze_select(expr.candidates)
            else:
                for candidate in expr.candidates:
                    self._walk_expr(candidate, binding_map, read_action)
        elif isinstance(expr, ast.BetweenExpr):
            self._walk_expr(expr.operand, binding_map, read_action)
            self._walk_expr(expr.low, binding_map, read_action)
            self._walk_expr(expr.high, binding_map, read_action)
        elif isinstance(expr, ast.LikeExpr):
            self._walk_expr(expr.operand, binding_map, read_action)
            self._walk_expr(expr.pattern, binding_map, read_action)
        elif isinstance(expr, ast.IsNullExpr):
            self._walk_expr(expr.operand, binding_map, read_action)
        elif isinstance(expr, ast.ExistsExpr):
            self._analyze_select(expr.subquery)
        elif isinstance(expr, ast.ScalarSubquery):
            self._analyze_select(expr.subquery)
        elif isinstance(expr, ast.CastExpr):
            self._walk_expr(expr.operand, binding_map, read_action)
