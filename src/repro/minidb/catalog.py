"""System catalog: table/view/index metadata and constraint definitions.

The catalog is the single source of truth the rest of the engine (and
BridgeScope's context-retrieval tools) reads schema information from. Its
rendering helpers intentionally produce *stable, deterministic* text because
token-count experiments depend on reproducible schema strings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from . import ast_nodes as ast
from .errors import DuplicateObjectError, UnknownColumnError, UnknownTableError
from .types import ColumnType


@dataclass
class Column:
    """Resolved column metadata."""

    name: str
    ctype: ColumnType
    not_null: bool = False
    default: Any = None
    has_default: bool = False

    def describe(self) -> str:
        parts = [f"{self.name} {self.ctype}"]
        if self.not_null:
            parts.append("NOT NULL")
        if self.has_default:
            parts.append(f"DEFAULT {self.default!r}")
        return " ".join(parts)


@dataclass
class ForeignKey:
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"FOREIGN KEY ({', '.join(self.columns)}) REFERENCES "
            f"{self.ref_table}({', '.join(self.ref_columns)})"
        )


@dataclass
class TableSchema:
    """Complete schema of one table."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    uniques: list[tuple[str, ...]] = field(default_factory=list)
    checks: list[ast.Expr] = field(default_factory=list)
    check_sources: list[str] = field(default_factory=list)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise UnknownColumnError(
            f"column {name!r} of table {self.name!r} does not exist"
        )

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def render_create(self) -> str:
        """Render as a normalized CREATE TABLE statement (LLM-readable)."""
        lines = [f"CREATE TABLE {self.name} ("]
        body: list[str] = [f"    {col.describe()}" for col in self.columns]
        if self.primary_key:
            body.append(f"    PRIMARY KEY ({', '.join(self.primary_key)})")
        for unique in self.uniques:
            body.append(f"    UNIQUE ({', '.join(unique)})")
        for fk in self.foreign_keys:
            body.append(f"    {fk.describe()}")
        for source in self.check_sources:
            body.append(f"    CHECK ({source})")
        lines.append(",\n".join(body))
        lines.append(");")
        return "\n".join(lines)


@dataclass
class IndexSchema:
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    kind: str = "hash"  # "hash" | "btree" (CREATE INDEX ... USING <kind>)

    def describe(self) -> str:
        prefix = "UNIQUE INDEX" if self.unique else "INDEX"
        using = " USING BTREE" if self.kind == "btree" else ""
        return (
            f"{prefix} {self.name} ON "
            f"{self.table}{using}({', '.join(self.columns)})"
        )


@dataclass
class ViewSchema:
    name: str
    select: ast.SelectStatement
    source_sql: str

    def describe(self) -> str:
        return f"CREATE VIEW {self.name} AS {self.source_sql};"


class Catalog:
    """Registry of all named objects in a database."""

    def __init__(self):
        self.tables: dict[str, TableSchema] = {}
        self.views: dict[str, ViewSchema] = {}
        self.indexes: dict[str, IndexSchema] = {}
        #: ANALYZE products by lower table name (statistics.TableStatistics);
        #: dropped with their table, renamed with it, persisted in snapshots
        self.statistics: dict[str, Any] = {}
        #: index names are a database-wide namespace, but concurrent
        #: CREATE INDEX statements only hold X locks on their (possibly
        #: different) tables — the name check-then-set must be atomic on
        #: its own
        self._index_name_mutex = threading.Lock()

    # ------------------------------------------------------------- lookups

    def _key(self, name: str) -> str:
        return name.lower()

    def has_table(self, name: str) -> bool:
        return self._key(name) in self.tables

    def has_view(self, name: str) -> bool:
        return self._key(name) in self.views

    def has_object(self, name: str) -> bool:
        key = self._key(name)
        return key in self.tables or key in self.views

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[self._key(name)]
        except KeyError:
            raise UnknownTableError(f"relation {name!r} does not exist") from None

    def view(self, name: str) -> ViewSchema:
        try:
            return self.views[self._key(name)]
        except KeyError:
            raise UnknownTableError(f"view {name!r} does not exist") from None

    def index(self, name: str) -> IndexSchema:
        try:
            return self.indexes[self._key(name)]
        except KeyError:
            raise UnknownTableError(f"index {name!r} does not exist") from None

    def object_names(self) -> list[str]:
        """All top-level object names (tables + views), sorted."""
        names = [t.name for t in self.tables.values()]
        names.extend(v.name for v in self.views.values())
        return sorted(names)

    def indexes_on(self, table: str) -> list[IndexSchema]:
        key = self._key(table)
        return sorted(
            (ix for ix in self.indexes.values() if self._key(ix.table) == key),
            key=lambda ix: ix.name,
        )

    def referencing_tables(self, table: str) -> list[str]:
        """Names of tables holding a FK that references ``table``."""
        key = self._key(table)
        result = []
        for schema in self.tables.values():
            if any(self._key(fk.ref_table) == key for fk in schema.foreign_keys):
                result.append(schema.name)
        return sorted(result)

    # ----------------------------------------------------------- mutations

    def add_table(self, schema: TableSchema) -> None:
        if self.has_object(schema.name):
            raise DuplicateObjectError(f"relation {schema.name!r} already exists")
        self.tables[self._key(schema.name)] = schema

    def remove_table(self, name: str) -> TableSchema:
        self.statistics.pop(self._key(name), None)
        return self.tables.pop(self._key(name))

    def add_view(self, schema: ViewSchema, replace: bool = False) -> None:
        key = self._key(schema.name)
        if not replace and self.has_object(schema.name):
            raise DuplicateObjectError(f"relation {schema.name!r} already exists")
        if self._key(schema.name) in self.tables:
            raise DuplicateObjectError(
                f"a table named {schema.name!r} already exists"
            )
        self.views[key] = schema

    def remove_view(self, name: str) -> ViewSchema:
        return self.views.pop(self._key(name))

    def add_index(self, schema: IndexSchema) -> None:
        with self._index_name_mutex:
            if self._key(schema.name) in self.indexes:
                raise DuplicateObjectError(
                    f"index {schema.name!r} already exists"
                )
            self.indexes[self._key(schema.name)] = schema

    def remove_index(self, name: str) -> IndexSchema:
        return self.indexes.pop(self._key(name))

    def rename_table(self, old: str, new: str) -> None:
        if self.has_object(new):
            raise DuplicateObjectError(f"relation {new!r} already exists")
        stats = self.statistics.get(self._key(old))
        schema = self.remove_table(old)
        schema.name = new
        self.add_table(schema)
        if stats is not None:
            stats.table = new
            self.statistics[self._key(new)] = stats
        for index in self.indexes.values():
            if self._key(index.table) == self._key(old):
                index.table = new
