"""Undo-log transaction manager giving minidb its ACID semantics.

Every mutating operation appends an :class:`UndoRecord` to the active
transaction's log. ``ROLLBACK`` replays the log in reverse; ``COMMIT``
discards it. Statements executed outside an explicit transaction run in
autocommit mode: a tiny implicit transaction wraps each one, so a failed
multi-row INSERT still rolls back atomically (statement-level atomicity,
as in PostgreSQL).

Savepoints are implemented as positions in the undo log.

DDL is transactional too (PostgreSQL-style): CREATE/DROP TABLE record undo
actions that restore catalog *and* heap state.

Durability hooks
----------------

When the database runs on a durable storage engine, the manager also
keeps a **redo log** per transaction: one JSON-able record per committed
physical mutation (see :mod:`repro.minidb.engines`). Redo records are
appended by the executor alongside undo records, truncated in lockstep
with the undo log by savepoint/statement rollbacks, discarded by
``ROLLBACK``, and flushed to the engine's write-ahead log at the commit
boundary — so only mutations of *committed* transactions ever reach disk.
Undo replay itself never logs redo (rolled-back work is invisible to the
WAL by construction, not by compensation records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from .errors import TransactionError

#: an undo record is just a closure that reverses one physical change
UndoAction = Callable[[], None]

#: a redo record is a JSON-able description of one committed mutation
RedoRecord = dict[str, Any]


class TransactionHooks(Protocol):
    """Durability callbacks a :class:`TransactionManager` reports into.

    Implemented by :class:`~repro.minidb.database.Database` when the
    database runs on a durable engine: ``commit_redo`` appends a committed
    transaction's redo records to the WAL; the begin/finish pair lets the
    database track open *explicit* transactions, so checkpoints never
    snapshot heaps containing uncommitted (undo-pending) mutations.
    """

    def commit_redo(self, records: list[RedoRecord]) -> None: ...

    def explicit_began(self) -> None: ...

    def explicit_finished(self) -> None: ...


@dataclass
class UndoRecord:
    description: str
    action: UndoAction


@dataclass
class Transaction:
    """State of one open transaction."""

    txid: int
    undo_log: list[UndoRecord] = field(default_factory=list)
    redo_log: list[RedoRecord] = field(default_factory=list)
    #: savepoint name -> (undo position, redo position)
    savepoints: dict[str, tuple[int, int]] = field(default_factory=dict)
    implicit: bool = False

    def log(self, description: str, action: UndoAction) -> None:
        self.undo_log.append(UndoRecord(description, action))


class TransactionManager:
    """Per-session transaction state machine.

    The manager is deliberately session-scoped — its undo/redo logs are
    only ever touched by the session's own thread, so it needs no locking
    of its own. Concurrency enters at the two shared touchpoints it calls
    *out* to, both of which are thread-safe: the hooks' counter updates
    are mutex-guarded by the database, and ``commit_redo`` lands in the
    durable engine's serialized ``append_commit`` (one mutex allocates
    WAL ``seq`` numbers and performs the write, so concurrent committers
    interleave whole transactions, never records, and ``seq`` stays
    strictly monotonic). Cross-session *data* conflicts are the lock
    manager's job (see :mod:`repro.service.locks`), not this class's.
    """

    def __init__(self, hooks: TransactionHooks | None = None):
        self._next_txid = 1
        self.current: Transaction | None = None
        self.hooks = hooks
        #: statistics the benchmarks read
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0

    # ------------------------------------------------------------ queries

    @property
    def in_transaction(self) -> bool:
        return self.current is not None and not self.current.implicit

    @property
    def redo_enabled(self) -> bool:
        """Whether mutation sites should build redo records at all.

        ``False`` on the default in-memory engine, so the write path pays
        nothing for durability it does not have.
        """
        return self.hooks is not None

    # ------------------------------------------------------------- control

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise TransactionError("a transaction is already in progress")
        tx = self._start(implicit=False)
        if self.hooks is not None:
            self.hooks.explicit_began()
        return tx

    def begin_implicit(self) -> Transaction:
        """Start the autocommit wrapper around a single statement."""
        if self.current is not None:
            raise TransactionError("nested implicit transaction")
        return self._start(implicit=True)

    def _start(self, implicit: bool) -> Transaction:
        tx = Transaction(self._next_txid, implicit=implicit)
        self._next_txid += 1
        self.current = tx
        if not implicit:
            self.begun += 1
        return tx

    def commit(self) -> None:
        if self.current is None:
            raise TransactionError("no transaction in progress")
        tx = self.current
        self.current = None
        if not tx.implicit:
            self.committed += 1
        if self.hooks is not None:
            # flush first: a WAL append failure must surface to the caller
            # *after* local state says committed — mirroring the undo-log
            # design where heap state is already final at this point. The
            # finally keeps the open-transaction count honest even when
            # the flush fails (disk full, engine closed): the transaction
            # is locally over either way, and a leaked count would block
            # every future checkpoint.
            try:
                if tx.redo_log:
                    self.hooks.commit_redo(tx.redo_log)
            finally:
                if not tx.implicit:
                    self.hooks.explicit_finished()

    def rollback(self) -> None:
        if self.current is None:
            raise TransactionError("no transaction in progress")
        tx = self.current
        for record in reversed(tx.undo_log):
            record.action()
        self.current = None
        if not tx.implicit:
            self.rolled_back += 1
            if self.hooks is not None:
                self.hooks.explicit_finished()

    # ---------------------------------------------------------- savepoints

    def savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("SAVEPOINT requires an explicit transaction")
        tx = self.current
        tx.savepoints[name.lower()] = (len(tx.undo_log), len(tx.redo_log))

    def rollback_to_savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        tx = self.current
        key = name.lower()
        if key not in tx.savepoints:
            raise TransactionError(f"savepoint {name!r} does not exist")
        undo_position, redo_position = tx.savepoints[key]
        self._truncate_to(tx, undo_position, redo_position)
        # drop savepoints created after this one
        tx.savepoints = {
            n: marks for n, marks in tx.savepoints.items()
            if marks[0] <= undo_position
        }

    def release_savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        key = name.lower()
        if key not in self.current.savepoints:
            raise TransactionError(f"savepoint {name!r} does not exist")
        del self.current.savepoints[key]

    @staticmethod
    def _truncate_to(tx: Transaction, undo_position: int, redo_position: int) -> None:
        """Undo (and un-log) everything past the given log positions."""
        while len(tx.undo_log) > undo_position:
            tx.undo_log.pop().action()
        del tx.redo_log[redo_position:]

    # ------------------------------------------------------------- logging

    def log_undo(self, description: str, action: UndoAction) -> None:
        """Record an undo action against the current (possibly implicit) tx."""
        if self.current is None:
            raise TransactionError(
                "internal error: mutation outside any transaction context"
            )
        self.current.log(description, action)

    def log_redo(self, record: RedoRecord) -> None:
        """Record one committed-if-we-commit mutation for the WAL."""
        if self.current is None:
            raise TransactionError(
                "internal error: mutation outside any transaction context"
            )
        self.current.redo_log.append(record)


class StatementGuard:
    """Context manager giving a statement autocommit-or-enlist semantics.

    Inside an explicit transaction, a failing statement rolls back only its
    own changes (via a hidden savepoint) while keeping the transaction open
    — mirroring the behavior agents rely on to retry failed SQL without
    losing prior work.
    """

    def __init__(self, manager: TransactionManager):
        self.manager = manager
        self._implicit = False
        self._marks: tuple[int, int] | None = None

    def __enter__(self) -> "StatementGuard":
        if self.manager.current is None:
            self.manager.begin_implicit()
            self._implicit = True
        else:
            tx = self.manager.current
            self._marks = (len(tx.undo_log), len(tx.redo_log))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self._implicit:
                self.manager.commit()
            return False
        # failure: undo this statement's changes only
        if self._implicit:
            self.manager.rollback()
        else:
            tx = self.manager.current
            assert tx is not None and self._marks is not None
            TransactionManager._truncate_to(tx, *self._marks)
        return False  # propagate the exception
