"""Undo-log transaction manager giving minidb its ACID semantics.

Every mutating operation appends an :class:`UndoRecord` to the active
transaction's log. ``ROLLBACK`` replays the log in reverse; ``COMMIT``
discards it. Statements executed outside an explicit transaction run in
autocommit mode: a tiny implicit transaction wraps each one, so a failed
multi-row INSERT still rolls back atomically (statement-level atomicity,
as in PostgreSQL).

Savepoints are implemented as positions in the undo log.

DDL is transactional too (PostgreSQL-style): CREATE/DROP TABLE record undo
actions that restore catalog *and* heap state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from .errors import TransactionError

#: an undo record is just a closure that reverses one physical change
UndoAction = Callable[[], None]


@dataclass
class UndoRecord:
    description: str
    action: UndoAction


@dataclass
class Transaction:
    """State of one open transaction."""

    txid: int
    undo_log: list[UndoRecord] = field(default_factory=list)
    savepoints: dict[str, int] = field(default_factory=dict)
    implicit: bool = False

    def log(self, description: str, action: UndoAction) -> None:
        self.undo_log.append(UndoRecord(description, action))


class TransactionManager:
    """Per-session transaction state machine.

    The manager is deliberately session-scoped: minidb sessions serialize
    access to the shared store (the engine is single-threaded), so isolation
    reduces to statement atomicity plus explicit transaction boundaries —
    exactly the properties the BridgeScope experiments rely on.
    """

    def __init__(self):
        self._next_txid = 1
        self.current: Transaction | None = None
        #: statistics the benchmarks read
        self.begun = 0
        self.committed = 0
        self.rolled_back = 0

    # ------------------------------------------------------------ queries

    @property
    def in_transaction(self) -> bool:
        return self.current is not None and not self.current.implicit

    # ------------------------------------------------------------- control

    def begin(self) -> Transaction:
        if self.in_transaction:
            raise TransactionError("a transaction is already in progress")
        return self._start(implicit=False)

    def begin_implicit(self) -> Transaction:
        """Start the autocommit wrapper around a single statement."""
        if self.current is not None:
            raise TransactionError("nested implicit transaction")
        return self._start(implicit=True)

    def _start(self, implicit: bool) -> Transaction:
        tx = Transaction(self._next_txid, implicit=implicit)
        self._next_txid += 1
        self.current = tx
        if not implicit:
            self.begun += 1
        return tx

    def commit(self) -> None:
        if self.current is None:
            raise TransactionError("no transaction in progress")
        implicit = self.current.implicit
        self.current = None
        if not implicit:
            self.committed += 1

    def rollback(self) -> None:
        if self.current is None:
            raise TransactionError("no transaction in progress")
        tx = self.current
        for record in reversed(tx.undo_log):
            record.action()
        implicit = tx.implicit
        self.current = None
        if not implicit:
            self.rolled_back += 1

    # ---------------------------------------------------------- savepoints

    def savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("SAVEPOINT requires an explicit transaction")
        self.current.savepoints[name.lower()] = len(self.current.undo_log)

    def rollback_to_savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        tx = self.current
        key = name.lower()
        if key not in tx.savepoints:
            raise TransactionError(f"savepoint {name!r} does not exist")
        position = tx.savepoints[key]
        while len(tx.undo_log) > position:
            tx.undo_log.pop().action()
        # drop savepoints created after this one
        tx.savepoints = {n: p for n, p in tx.savepoints.items() if p <= position}

    def release_savepoint(self, name: str) -> None:
        if not self.in_transaction:
            raise TransactionError("no transaction in progress")
        key = name.lower()
        if key not in self.current.savepoints:
            raise TransactionError(f"savepoint {name!r} does not exist")
        del self.current.savepoints[key]

    # ------------------------------------------------------------- logging

    def log_undo(self, description: str, action: UndoAction) -> None:
        """Record an undo action against the current (possibly implicit) tx."""
        if self.current is None:
            raise TransactionError(
                "internal error: mutation outside any transaction context"
            )
        self.current.log(description, action)


class StatementGuard:
    """Context manager giving a statement autocommit-or-enlist semantics.

    Inside an explicit transaction, a failing statement rolls back only its
    own changes (via a hidden savepoint) while keeping the transaction open
    — mirroring the behavior agents rely on to retry failed SQL without
    losing prior work.
    """

    def __init__(self, manager: TransactionManager):
        self.manager = manager
        self._implicit = False
        self._mark: int | None = None

    def __enter__(self) -> "StatementGuard":
        if self.manager.current is None:
            self.manager.begin_implicit()
            self._implicit = True
        else:
            self._mark = len(self.manager.current.undo_log)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            if self._implicit:
                self.manager.commit()
            return False
        # failure: undo this statement's changes only
        if self._implicit:
            self.manager.rollback()
        else:
            tx = self.manager.current
            assert tx is not None and self._mark is not None
            while len(tx.undo_log) > self._mark:
                tx.undo_log.pop().action()
        return False  # propagate the exception
