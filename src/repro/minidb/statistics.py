"""Per-table statistics: what ``ANALYZE`` collects, what the cost model reads.

``ANALYZE [table]`` scans each table once and distills every column into a
:class:`ColumnStats` — row count, number of distinct values (NDV), NULL
fraction, and an equi-depth histogram — bundled per table into a
:class:`TableStatistics` stored on the catalog (``catalog.statistics``) and
persisted through snapshots and the WAL like any other DDL product.

The planner's cost model (``planner.choose_access_path``) turns these into
estimated row counts per candidate access path. Two properties matter:

* **Skew-awareness.** Equi-depth histogram boundaries repeat when one value
  fills whole buckets, so a value spanning ``k`` boundaries is estimated at
  ``(k - 1) / buckets`` of the non-NULL rows — heavy hitters are *seen*,
  not averaged away under a uniform-distribution assumption. Everything
  else falls back to ``1 / NDV``.
* **Total-order alignment.** Histogram positioning compares values by
  ``storage.ordering_key_element`` — the same NULLs-last, numbers-before-
  text order the indexes use — so range selectivity over a mixed-type
  column estimates the same candidate set the index slice will return.

Staleness: a :class:`TableStatistics` records the heap's ``(uid, version)``
at ANALYZE time. Statistics whose ``uid`` no longer matches the live heap
(the table was dropped and recreated) are ignored entirely; a differing
``version`` merely means estimates drift with un-analyzed churn, which is
the standard trade — re-run ``ANALYZE`` to refresh.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from .storage import ordering_key_element

if TYPE_CHECKING:  # pragma: no cover
    from .catalog import TableSchema
    from .storage import HeapTable

#: equi-depth histogram resolution (boundary count = buckets + 1)
HISTOGRAM_BUCKETS = 100


@dataclass
class ColumnStats:
    """Distribution summary of one column.

    ``boundaries`` are ``buckets + 1`` values cut from the sorted non-NULL
    column at equal-depth positions (first element = min, last = max);
    fewer when the column holds fewer distinct rows. ``ndv`` counts
    distinct non-NULL values; ``null_frac`` is the NULL fraction of the
    whole column.
    """

    ndv: int
    null_frac: float
    boundaries: list[Any] = field(default_factory=list)
    #: lazily computed ordering keys of ``boundaries`` (not persisted)
    _boundary_keys: list[tuple] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_values(
        cls, values: list[Any], buckets: int = HISTOGRAM_BUCKETS
    ) -> "ColumnStats":
        total = len(values)
        non_null = [v for v in values if v is not None]
        null_frac = (total - len(non_null)) / total if total else 0.0
        if not non_null:
            return cls(ndv=0, null_frac=null_frac)
        keyed = sorted((ordering_key_element(v), v) for v in non_null)
        ndv = 1
        for (prev_key, _), (key, _) in zip(keyed, keyed[1:]):
            if key != prev_key:
                ndv += 1
        last = len(keyed) - 1
        cuts = min(buckets, last) or 1
        boundaries = [keyed[(i * last) // cuts][1] for i in range(cuts + 1)]
        return cls(ndv=ndv, null_frac=null_frac, boundaries=boundaries)

    def _keys(self) -> list[tuple]:
        if self._boundary_keys is None:
            self._boundary_keys = [
                ordering_key_element(b) for b in self.boundaries
            ]
        return self._boundary_keys

    def eq_fraction(self, value: Any) -> float:
        """Estimated fraction of *all* rows equal to ``value``.

        NULL matches nothing (probes never return NULL keys). A value
        repeated across histogram boundaries covers whole buckets — the
        skewed-heavy-hitter case; otherwise assume its equal run is one
        of ``ndv`` same-sized runs among the non-NULL rows.
        """
        if value is None or self.ndv == 0:
            return 0.0
        non_null = 1.0 - self.null_frac
        keys = self._keys()
        key = ordering_key_element(value)
        span = bisect_right(keys, key) - bisect_left(keys, key)
        buckets = max(1, len(keys) - 1)
        if span >= 2:
            return non_null * (span - 1) / buckets
        return non_null / self.ndv

    def range_fraction(
        self,
        low: Any = None,
        high: Any = None,
        incl_low: bool = True,
        incl_high: bool = True,
    ) -> float:
        """Estimated fraction of all rows inside the bound pair.

        Bucket-granular: a bound's position is its bisect rank among the
        boundaries over the bucket count. Matches the index contract —
        bounds compare by ordering key, NULLs (ordered last) never fall
        inside a bounded range.
        """
        if self.ndv == 0:
            return 0.0
        keys = self._keys()
        buckets = max(1, len(keys) - 1)

        def position(value: Any, inclusive_side_left: bool) -> float:
            key = ordering_key_element(value)
            if inclusive_side_left:
                return bisect_left(keys, key) / buckets
            return bisect_right(keys, key) / buckets

        lo_pos = 0.0 if low is None else position(low, incl_low)
        hi_pos = 1.0 if high is None else position(high, not incl_high)
        fraction = max(0.0, min(1.0, hi_pos) - max(0.0, lo_pos))
        return (1.0 - self.null_frac) * fraction

    def to_payload(self) -> dict[str, Any]:
        return {
            "ndv": self.ndv,
            "null_frac": self.null_frac,
            "boundaries": list(self.boundaries),
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "ColumnStats":
        return cls(
            ndv=data["ndv"],
            null_frac=data["null_frac"],
            boundaries=list(data["boundaries"]),
        )


@dataclass
class TableStatistics:
    """All column statistics of one table, stamped with heap identity."""

    table: str
    row_count: int
    uid: int
    version: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())

    def to_payload(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "uid": self.uid,
            "version": self.version,
            "columns": {
                name: stats.to_payload()
                for name, stats in sorted(self.columns.items())
            },
        }

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "TableStatistics":
        return cls(
            table=data["table"],
            row_count=data["row_count"],
            uid=data["uid"],
            version=data["version"],
            columns={
                name: ColumnStats.from_payload(entry)
                for name, entry in data["columns"].items()
            },
        )


def build_table_statistics(
    schema: "TableSchema",
    heap: "HeapTable",
    buckets: int = HISTOGRAM_BUCKETS,
) -> TableStatistics:
    """One full scan of ``heap`` into a fresh :class:`TableStatistics`."""
    names = [c.name for c in schema.columns]
    columns: dict[str, list[Any]] = {name: [] for name in names}
    row_count = 0
    for _, row in heap.rows():
        row_count += 1
        for name in names:
            columns[name].append(row.get(name))
    return TableStatistics(
        table=schema.name,
        row_count=row_count,
        uid=heap.uid,
        version=heap.version,
        columns={
            name.lower(): ColumnStats.from_values(values, buckets)
            for name, values in columns.items()
        },
    )
