"""Statement executor: the query-processing core of minidb.

The executor receives parsed AST statements plus a :class:`Session` and
performs them against the database's catalog and heaps, logging undo actions
through the session's transaction manager so every statement is atomic and
every explicit transaction can roll back.

The SELECT pipeline is a materializing implementation: resolve FROM sources
(expanding views, probing covering indexes, slicing sorted indexes for
range conjuncts, and pre-filtering with pushed-down single-source
predicates), fold sources and explicit joins one at a time, WHERE filter,
GROUP BY with accumulator aggregates, HAVING, projection, DISTINCT, set
operations, ORDER BY, LIMIT/OFFSET. Correlated subqueries are supported
via scope chaining.

Three ordered-access fast paths ride on that pipeline (PR 5):

* **Range scans** — WHERE range conjuncts slice a ``USING BTREE``
  :class:`SortedIndex` (``planner_stats["range_scans"]``); candidates
  still get the full WHERE re-applied, so the plan is a pure reduction.
* **Ordered scans** — when a sorted index's order is exactly the
  statement's ORDER BY (equality-bound prefix + order columns), rows are
  read from the index in output order, the sort is skipped, and the scan
  stops after OFFSET+LIMIT surviving rows (``ordered_scans``).
* **Top-N** — ``ORDER BY ... LIMIT k`` without such an index keeps a
  bounded ``heapq`` selection instead of sorting everything
  (``topn_limits``).

WHERE/residual/pushdown predicates are compiled once per statement into
closure chains (:func:`repro.minidb.expressions.compile_predicate`),
falling back to the AST interpreter for subquery-bearing or correlated
expressions; UPDATE/DELETE resolve their target rows through the same
access-path planning as SELECT sources. All of it is toggleable through
``db.planner_options`` (``enable_index_scan``, ``enable_topn``,
``enable_compiled_predicates``) for baselines and debugging.

Joins follow the strategy chosen by :mod:`repro.minidb.planner`: equi-joins
(keys harvested from ON and WHERE conjuncts) build a hash table over the
right side and probe it per left row — including LEFT/RIGHT NULL extension
for unmatched rows — while non-equi conditions fall back to nested loops
and conditionless pairings remain cross products. Row scopes are built from
a precomputed column layout (:class:`_ScopeLayout`), so constructing the
scope for a row or a candidate pair is O(1) instead of O(total columns).
The chosen strategies are observable via ``EXPLAIN`` and
``db.planner_stats`` and the hash path can be disabled with
``db.planner_options["enable_hash_join"] = False`` (benchmark baseline).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any

from ..obs.views import is_system_relation, system_view_rows
from . import ast_nodes as ast
from .batch import DEFAULT_BATCH_SIZE, BatchError, RowBatch
from .catalog import Column, ForeignKey, IndexSchema, TableSchema, ViewSchema
from .errors import (
    CheckViolation,
    DuplicateObjectError,
    ExecutionError,
    ForeignKeyViolation,
    NotNullViolation,
    SQLSyntaxError,
    UnknownColumnError,
    UnknownTableError,
)
from .expressions import (
    CannotCompile,
    Evaluator,
    Scope,
    batch_raiser,
    compile_batch_expr,
    compile_predicate,
)
from .functions import AGGREGATE_NAMES, make_aggregate
from .planner import (
    JoinPlan,
    choose_access_path,
    extract_equality_bindings,
    extract_pushdown_filter,
    extract_range_bindings,
    extract_union_bindings,
    plan_join,
    plan_select_joins,
    plan_select_paths,
)
from .engines.serial import dump_column, dump_index, dump_table_schema
from .result import ResultSet
from .sqlgen import expr_to_sql, select_to_sql
from .statistics import build_table_statistics
from .storage import (
    HashIndex,
    HeapTable,
    Row,
    SortedIndex,
    ordering_key_element,
)
from .types import ColumnType, coerce

if TYPE_CHECKING:  # pragma: no cover
    from .database import Database, Session


# --------------------------------------------------------------------------
# helper structures for SELECT
# --------------------------------------------------------------------------


class _Source:
    """One resolved FROM source: binding name + columns + materialized rows."""

    def __init__(self, binding: str, columns: list[str], rows: list[Row]):
        self.binding = binding
        self.columns = columns
        self.rows = rows


class _JoinedRow:
    """A row of the joined relation: binding -> per-source row (or None)."""

    __slots__ = ("parts",)

    def __init__(self, parts: dict[str, Row | None]):
        self.parts = parts

    def extended(self, binding: str, row: Row | None) -> "_JoinedRow":
        parts = dict(self.parts)
        parts[binding] = row
        return _JoinedRow(parts)


class _LayoutView:
    """Lazy name->value view over joined-row parts, driven by a layout map.

    Implements just the mapping surface :class:`Scope` touches
    (``in`` / ``[]``), resolving each lookup through ``layout`` as
    ``name -> (binding, column)`` and reading the addressed part row.
    """

    __slots__ = ("_layout", "_parts")

    def __init__(self, layout: dict[str, tuple[str, str]], parts):
        self._layout = layout
        self._parts = parts

    def __contains__(self, key: str) -> bool:
        return key in self._layout

    def __getitem__(self, key: str) -> Any:
        binding, column = self._layout[key]
        row = self._parts.get(binding)
        return None if row is None else row.get(column)


class _PartsOverlay:
    """Joined-row parts plus one pending (binding, row) not yet folded in.

    Lets join predicates evaluate candidate pairs without copying the
    parts dict per pair.
    """

    __slots__ = ("_parts", "_binding", "_row")

    def __init__(self, parts: dict[str, Row | None], binding: str, row: Row | None):
        self._parts = parts
        self._binding = binding
        self._row = row

    def get(self, key: str) -> Row | None:
        if key == self._binding:
            return self._row
        return self._parts.get(key)


class _ScopeLayout:
    """Precomputed column layout for a set of sources.

    Building a :class:`Scope` per row previously rebuilt qualified and
    unqualified value dicts over every column of every source — O(total
    columns) per row (and per candidate join pair). The layout computes the
    name-resolution maps once per relation shape; per-row scopes are then
    O(1) views that fetch values on demand.
    """

    __slots__ = ("outer", "ambiguous", "_qualified", "_unqualified")

    def __init__(self, sources: list[_Source], outer: Scope | None):
        qualified: dict[str, tuple[str, str]] = {}
        by_name: dict[str, list[tuple[str, str]]] = {}
        for source in sources:
            binding = source.binding
            for col in source.columns:
                qualified[f"{binding.lower()}.{col.lower()}"] = (binding, col)
                by_name.setdefault(col.lower(), []).append((binding, col))
        self.outer = outer
        self.ambiguous = frozenset(
            name for name, refs in by_name.items() if len(refs) > 1
        )
        self._qualified = qualified
        self._unqualified = {
            name: refs[0] for name, refs in by_name.items() if len(refs) == 1
        }

    def scope(self, jr: _JoinedRow) -> Scope:
        return self.scope_parts(jr.parts)

    def scope_parts(self, parts) -> Scope:
        return Scope(
            _LayoutView(self._qualified, parts),
            _LayoutView(self._unqualified, parts),
            self.ambiguous,
            self.outer,
        )

    def pair_scope(self, jr: _JoinedRow, binding: str, row: Row | None) -> Scope:
        return self.scope_parts(_PartsOverlay(jr.parts, binding, row))


def _raising_accessor(exc: Exception):
    def fn(ctx, exc=exc):
        raise exc

    return fn


def _layout_resolver(layout: _ScopeLayout):
    """Column resolver for :func:`compile_predicate` over a scope layout.

    Resolution happens once at compile time; the returned accessors read
    the addressed part row directly per evaluation — no per-row scope
    object, no per-lookup name formatting. Names the layout cannot resolve
    compile to closures raising the interpreter's exact error (preserving
    "no rows evaluated, no error"), except when an outer scope exists:
    there the name may be a correlated reference, so compilation bails to
    the interpreter via :class:`CannotCompile`.
    """
    qualified = layout._qualified
    unqualified = layout._unqualified
    ambiguous = layout.ambiguous
    has_outer = layout.outer is not None

    def resolve(ref: ast.ColumnRef):
        if ref.table is not None:
            target = qualified.get(f"{ref.table.lower()}.{ref.name.lower()}")
        else:
            name = ref.name.lower()
            if name in ambiguous:
                return _raising_accessor(
                    UnknownColumnError(
                        f"column reference {ref.name!r} is ambiguous"
                    )
                )
            target = unqualified.get(name)
        if target is None:
            if has_outer:
                raise CannotCompile
            return _raising_accessor(
                UnknownColumnError(f"column {ref} does not exist")
            )
        binding, column = target

        def accessor(parts, binding=binding, column=column):
            row = parts.get(binding)
            return None if row is None else row.get(column)

        return accessor

    return resolve


class _TupleRow:
    """Mapping-shaped row over a result tuple plus a shared name->index map.

    Derived sources (subqueries, views) used to copy every result row into
    a fresh ``dict(zip(columns, row))`` that downstream operators then
    re-walked one lookup at a time; this view keeps the tuple and shares a
    single index map across every row of the source. Duplicate output
    names resolve to the last occurrence, matching the dict they replace.
    """

    __slots__ = ("_index", "_values")

    def __init__(self, index: dict[str, int], values: tuple):
        self._index = index
        self._values = values

    def get(self, column: str) -> Any:
        i = self._index.get(column)
        return None if i is None else self._values[i]


def _tuple_rows(columns: list[str], rows: list[tuple]) -> "list[_TupleRow]":
    index = {name: i for i, name in enumerate(columns)}
    return [_TupleRow(index, row) for row in rows]


class _BatchRowView:
    """Mapping-shaped view of one row of a column batch.

    Stands in for a row dict inside joined-row ``parts`` so per-row
    fallback evaluation on the batch path (subquery-bearing predicates,
    interpreter mode) reads straight from the batch's column lists —
    ``columns`` and ``index`` are re-pointed by the pipeline as it walks.
    Columns the statement never references are not materialized and so
    read as missing; the batch pipeline materializes *every* column
    whenever static reference analysis bails (stars, subqueries), which
    is exactly when an unlisted name could be read.
    """

    __slots__ = ("columns", "index")

    def __init__(self):
        self.columns: dict[str, list] = {}
        self.index = 0

    def get(self, column: str) -> Any:
        col = self.columns.get(column)
        return col[self.index] if col is not None else None


def _batch_layout_resolver(layout: _ScopeLayout):
    """Batch-column resolver for :func:`compile_batch_expr` — the
    vectorized mirror of :func:`_layout_resolver`: same compile-time
    resolution and the same :class:`CannotCompile` bail for possibly
    correlated names. Unresolvable names compile to columns of *deferred*
    errors (:func:`batch_raiser`) rather than raising accessors: a
    short-circuiting AND may never consume those elements, and a batch
    must not raise on rows the row-at-a-time plan would have skipped."""
    qualified = layout._qualified
    unqualified = layout._unqualified
    ambiguous = layout.ambiguous
    has_outer = layout.outer is not None

    def resolve(ref: ast.ColumnRef):
        if ref.table is not None:
            target = qualified.get(f"{ref.table.lower()}.{ref.name.lower()}")
        else:
            name = ref.name.lower()
            if name in ambiguous:
                return batch_raiser(
                    UnknownColumnError(
                        f"column reference {ref.name!r} is ambiguous"
                    )
                )
            target = unqualified.get(name)
        if target is None:
            if has_outer:
                raise CannotCompile
            return batch_raiser(
                UnknownColumnError(f"column {ref} does not exist")
            )
        _, column = target

        def accessor(batch, column=column):
            return batch.columns[column]

        return accessor

    return resolve


def _collect_column_refs(expr: ast.Expr | None, out: set[str]) -> bool:
    """Collect lowercased column names ``expr`` references into ``out``.

    Returns False when the reference set is not statically determinable
    (stars, subqueries, unknown node kinds) — the batch pipeline then
    materializes every column. ``COUNT(*)`` is the deliberate exception:
    its star touches no concrete column, and it is the scan shape the
    batch path exists to accelerate."""
    if expr is None or isinstance(expr, ast.Literal):
        return True
    if isinstance(expr, ast.ColumnRef):
        out.add(expr.name.lower())
        return True
    if isinstance(expr, ast.UnaryOp):
        return _collect_column_refs(expr.operand, out)
    if isinstance(expr, ast.BinaryOp):
        return _collect_column_refs(expr.left, out) and _collect_column_refs(
            expr.right, out
        )
    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            args = [a for a in expr.args if not isinstance(a, ast.Star)]
        else:
            args = expr.args
        return all(_collect_column_refs(a, out) for a in args)
    if isinstance(expr, ast.CaseExpr):
        parts: list[ast.Expr | None] = [expr.operand, expr.default]
        for when, then in expr.whens:
            parts.append(when)
            parts.append(then)
        return all(_collect_column_refs(p, out) for p in parts)
    if isinstance(expr, ast.InExpr):
        if not isinstance(expr.candidates, list):
            return False  # IN (SELECT ...): subquery owns the references
        return _collect_column_refs(expr.operand, out) and all(
            _collect_column_refs(c, out) for c in expr.candidates
        )
    if isinstance(expr, ast.BetweenExpr):
        return (
            _collect_column_refs(expr.operand, out)
            and _collect_column_refs(expr.low, out)
            and _collect_column_refs(expr.high, out)
        )
    if isinstance(expr, ast.LikeExpr):
        return _collect_column_refs(expr.operand, out) and _collect_column_refs(
            expr.pattern, out
        )
    if isinstance(expr, (ast.IsNullExpr, ast.CastExpr)):
        return _collect_column_refs(expr.operand, out)
    return False  # Star, ExistsExpr, ScalarSubquery, anything unknown


def _raise_first_batch_error(columns: list[list]) -> None:
    """Raise the deferred error the row plan would have hit first.

    The row path walks rows outermost and select items innermost, so the
    first error it raises is the minimum (row, item) pair in lexicographic
    order; within one item column only the earliest row can win."""
    best: "tuple[int, int, BatchError] | None" = None
    for c, col in enumerate(columns):
        for r, v in enumerate(col):
            if type(v) is BatchError:
                if best is None or (r, c) < (best[0], best[1]):
                    best = (r, c, v)
                break
    if best is not None:
        raise best[2].exc


def _collect_aggregates(expr: ast.Expr | None, out: list[ast.FunctionCall]) -> None:
    """Find aggregate FunctionCall nodes (not descending into subqueries)."""
    if expr is None:
        return
    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            out.append(expr)
            return  # nested aggregates are invalid; don't descend
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, ast.BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, ast.UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.CaseExpr):
        if expr.operand:
            _collect_aggregates(expr.operand, out)
        for when, then in expr.whens:
            _collect_aggregates(when, out)
            _collect_aggregates(then, out)
        if expr.default:
            _collect_aggregates(expr.default, out)
    elif isinstance(expr, ast.InExpr):
        _collect_aggregates(expr.operand, out)
        if isinstance(expr.candidates, list):
            for c in expr.candidates:
                _collect_aggregates(c, out)
    elif isinstance(expr, ast.BetweenExpr):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, (ast.LikeExpr,)):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.pattern, out)
    elif isinstance(expr, ast.IsNullExpr):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, ast.CastExpr):
        _collect_aggregates(expr.operand, out)


def _order_sensitive_expr(expr: ast.Expr | None) -> bool:
    """Whether evaluating ``expr`` for a single ungrouped aggregate row can
    observe the input row order (bare column refs read the group's first
    row; subqueries may correlate against it). Conservative: unknown node
    kinds count as sensitive."""
    if expr is None:
        return False
    if isinstance(expr, ast.Literal):
        return False
    if isinstance(expr, (ast.ColumnRef, ast.Star)):
        return True
    if isinstance(expr, (ast.ScalarSubquery, ast.ExistsExpr)):
        return True
    if isinstance(expr, ast.FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            return False  # caller restricts to COUNT, which is order-free
        return any(_order_sensitive_expr(a) for a in expr.args)
    if isinstance(expr, ast.BinaryOp):
        return _order_sensitive_expr(expr.left) or _order_sensitive_expr(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _order_sensitive_expr(expr.operand)
    if isinstance(expr, ast.CaseExpr):
        return (
            _order_sensitive_expr(expr.operand)
            or any(
                _order_sensitive_expr(when) or _order_sensitive_expr(then)
                for when, then in expr.whens
            )
            or _order_sensitive_expr(expr.default)
        )
    if isinstance(expr, ast.InExpr):
        if not isinstance(expr.candidates, list):
            return True  # IN (SELECT ...) may correlate
        return _order_sensitive_expr(expr.operand) or any(
            _order_sensitive_expr(c) for c in expr.candidates
        )
    if isinstance(expr, ast.BetweenExpr):
        return (
            _order_sensitive_expr(expr.operand)
            or _order_sensitive_expr(expr.low)
            or _order_sensitive_expr(expr.high)
        )
    if isinstance(expr, ast.LikeExpr):
        return _order_sensitive_expr(expr.operand) or _order_sensitive_expr(
            expr.pattern
        )
    if isinstance(expr, (ast.IsNullExpr, ast.CastExpr)):
        return _order_sensitive_expr(expr.operand)
    return True


def _order_insensitive_output(
    stmt: ast.SelectStatement, aggregates: list[ast.FunctionCall]
) -> bool:
    """True when the statement's output provably ignores input row order.

    The qualifying shape is the agent-common ``SELECT COUNT(*) FROM ...``:
    one ungrouped aggregate row whose expressions never read a concrete
    row (COUNT only — SUM/AVG float accumulation is order-sensitive at the
    bit level, and bare columns read the first row of the group). Index
    probes feeding such statements may skip their rid sort.
    """
    if stmt.group_by or stmt.distinct or stmt.set_op is not None:
        return False
    if not aggregates or any(a.name != "COUNT" for a in aggregates):
        return False
    exprs: list[ast.Expr | None] = [item.expr for item in stmt.items]
    exprs.append(stmt.having)
    exprs.extend(order.expr for order in stmt.order_by)
    return not any(_order_sensitive_expr(e) for e in exprs)


class _AggregateEvaluator(Evaluator):
    """Evaluator that resolves aggregate calls from a precomputed map."""

    def __init__(self, run_subquery, computed: dict[int, Any]):
        super().__init__(run_subquery)
        self._computed = computed

    def _eval_FunctionCall(self, expr: ast.FunctionCall, scope: Scope) -> Any:
        if expr.name in AGGREGATE_NAMES:
            try:
                return self._computed[id(expr)]
            except KeyError:
                raise ExecutionError(
                    f"aggregate {expr.name}() used in an invalid position"
                ) from None
        return super()._eval_FunctionCall(expr, scope)


_NULL_SENTINEL = ("<null>",)

#: ORDER BY sort keys and SortedIndex entry order share one total order —
#: that identity is what lets an index-ordered scan replace a sort
#: bit-for-bit, so there is exactly one definition (storage.py)
_sort_key_element = ordering_key_element


# --------------------------------------------------------------------------
# executor
# --------------------------------------------------------------------------


class Executor:
    def __init__(self, database: "Database"):
        self.db = database

    # ------------------------------------------------------------ dispatch

    def execute(self, stmt: ast.Statement, session: "Session") -> ResultSet:
        name = type(stmt).__name__
        handler = getattr(self, f"_exec_{name}", None)
        if handler is None:
            raise ExecutionError(f"unsupported statement {name}")
        return handler(stmt, session)

    # -------------------------------------------------------------- SELECT

    def _exec_SelectStatement(
        self, stmt: ast.SelectStatement, session: "Session"
    ) -> ResultSet:
        columns, rows = self._run_select(stmt, session, outer=None)
        return ResultSet(columns=columns, rows=rows, rowcount=len(rows), status="SELECT")

    def _run_select(
        self,
        stmt: ast.SelectStatement,
        session: "Session",
        outer: Scope | None,
    ) -> tuple[list[str], list[tuple]]:
        def run_subquery(sub: ast.SelectStatement, scope: Scope) -> list[tuple]:
            _, sub_rows = self._run_select(sub, session, outer=scope)
            return sub_rows

        evaluator = Evaluator(run_subquery)

        # single-source predicate pushdown only pays off when the filtered
        # rows feed a join; single-table queries apply WHERE once, below
        prefilter = (len(stmt.from_sources) + len(stmt.joins)) > 1
        statement_sources = self._statement_sources(stmt) if prefilter else None

        # aggregates are collected from the raw select list (star items can
        # never contain one), so grouping — and with it order sensitivity —
        # is known before any source is scanned
        aggregates: list[ast.FunctionCall] = []
        for item in stmt.items:
            _collect_aggregates(item.expr, aggregates)
        _collect_aggregates(stmt.having, aggregates)
        for order in stmt.order_by:
            _collect_aggregates(order.expr, aggregates)
        grouped = bool(stmt.group_by) or bool(aggregates)
        order_insensitive = _order_insensitive_output(stmt, aggregates)

        # single-table ORDER BY fast path: when a sorted index already
        # yields rows in ORDER BY order, scan it directly (early-exiting
        # after OFFSET+LIMIT surviving rows) and skip the sort below
        where_handled = False
        order_handled = False
        ordered_source = None
        if (
            not grouped
            and not stmt.distinct
            and stmt.set_op is None
            and stmt.order_by
            and len(stmt.from_sources) == 1
            and not stmt.joins
            and isinstance(stmt.from_sources[0], ast.TableRef)
        ):
            ordered_source = self._try_ordered_scan(stmt, session, outer, evaluator)

        if ordered_source is None and self._batch_select_shape(stmt):
            # column-batch (vectorized) pipeline: single-table statements
            # run batch-at-a-time over RowBatch column slices, amortizing
            # interpreter dispatch across ~batch_size rows instead of
            # paying it per row. Produces the same (columns, rows, order
            # keys) triple the row path below would; the shared tail
            # (DISTINCT, set ops, ORDER BY, OFFSET/LIMIT) is untouched
            out_columns, out_rows, order_keys = self._run_select_batched(
                stmt, session, outer, evaluator, aggregates, grouped,
                order_insensitive, run_subquery,
            )
        else:
            if ordered_source is not None:
                all_sources = [ordered_source]
                joined = [
                    _JoinedRow({ordered_source.binding: row})
                    for row in ordered_source.rows
                ]
                where_handled = True
                order_handled = True
            else:
                # fold FROM sources one at a time (hash-joining on WHERE equi
                # conjuncts where possible) instead of materializing the full
                # cross product, then fold the explicit joins the same way
                all_sources = []
                joined = [_JoinedRow({})]
                for src in stmt.from_sources:
                    source = self._resolve_source(
                        src, session, outer, stmt.where, statement_sources,
                        order_insensitive,
                    )
                    if all_sources:
                        joined = self._join_relation(
                            joined, all_sources, source, "INNER", None,
                            stmt.where, evaluator, outer, statement_sources,
                        )
                    else:
                        joined = [
                            _JoinedRow({source.binding: row})
                            for row in source.rows
                        ]
                    all_sources.append(source)

                for join in stmt.joins:
                    right = self._resolve_source(
                        join.source, session, outer, stmt.where,
                        statement_sources, order_insensitive,
                    )
                    joined = self._join_relation(
                        joined, all_sources, right, join.kind, join.condition,
                        stmt.where, evaluator, outer, statement_sources,
                    )
                    all_sources.append(right)

            layout = _ScopeLayout(all_sources, outer)
            make_scope = layout.scope

            if stmt.where is not None and not where_handled:
                where_fn = self._compile_filter(stmt.where, layout)
                if where_fn is not None:
                    joined = [jr for jr in joined if where_fn(jr.parts)]
                else:
                    joined = [
                        jr
                        for jr in joined
                        if evaluator.evaluate_predicate(
                            stmt.where, make_scope(jr)
                        )
                    ]

            # expand stars into concrete items
            items = self._expand_items(stmt.items, all_sources)
            out_columns = [
                self._item_name(item, index) for index, item in enumerate(items)
            ]

            if grouped:
                out_rows, order_keys = self._run_grouped(
                    stmt, items, joined, make_scope, evaluator, aggregates,
                    run_subquery,
                )
            else:
                out_rows = []
                order_keys = []
                for jr in joined:
                    scope = make_scope(jr)
                    out_rows.append(
                        tuple(
                            evaluator.evaluate(item.expr, scope)
                            for item in items
                        )
                    )
                    if stmt.order_by and not order_handled:
                        order_keys.append(
                            self._order_key(
                                stmt.order_by, items, out_rows[-1], scope,
                                evaluator,
                            )
                        )

        if stmt.distinct:
            out_rows, order_keys = self._distinct(out_rows, order_keys)

        if stmt.set_op is not None:
            kind, rhs = stmt.set_op
            rhs_columns, rhs_rows = self._run_select(rhs, session, outer)
            if len(rhs_columns) != len(out_columns):
                raise ExecutionError(
                    f"{kind} operands must have the same number of columns"
                )
            out_rows = self._apply_set_op(kind, out_rows, rhs_rows)
            order_keys = []

        if order_handled:
            pass  # rows arrived in ORDER BY order from the sorted index
        elif stmt.order_by and order_keys:
            bound = None
            if stmt.limit is not None and self.db.planner_options.get(
                "enable_topn", True
            ):
                bound = stmt.limit + (stmt.offset or 0)
            if bound is not None and bound < len(out_rows):
                # bounded top-N: heapq.nsmallest with a key is documented
                # equivalent to sorted(...)[:n] (stable on equal keys), so
                # this returns the same rows in the same order without
                # sorting the discarded tail
                self.db.bump_planner_stat("topn_limits")
                paired = heapq.nsmallest(
                    bound, zip(order_keys, out_rows), key=lambda p: p[0]
                )
            else:
                paired = sorted(zip(order_keys, out_rows), key=lambda p: p[0])
            out_rows = [row for _, row in paired]
        elif stmt.order_by and not order_keys and out_rows:
            # set-op result ordered by ordinal/alias only
            out_rows = self._order_by_output(stmt.order_by, out_columns, out_rows)

        offset = stmt.offset or 0
        if offset:
            out_rows = out_rows[offset:]
        if stmt.limit is not None:
            out_rows = out_rows[: stmt.limit]

        return out_columns, out_rows

    def _run_grouped(
        self, stmt, items, joined, make_scope, evaluator, aggregates, run_subquery
    ) -> tuple[list[tuple], list[tuple]]:
        # bucket rows by group-by key
        groups: dict[tuple, list] = {}
        group_order: list[tuple] = []
        for jr in joined:
            scope = make_scope(jr)
            if stmt.group_by:
                key_values = tuple(
                    evaluator.evaluate(g, scope) for g in stmt.group_by
                )
                key = tuple(
                    _NULL_SENTINEL if v is None else (type(v).__name__, v)
                    for v in key_values
                )
            else:
                key = ()
            if key not in groups:
                groups[key] = []
                group_order.append(key)
            groups[key].append(jr)

        if not stmt.group_by and not groups:
            groups[()] = []
            group_order.append(())

        out_rows: list[tuple] = []
        order_keys: list[tuple] = []
        for key in group_order:
            members = groups[key]
            computed: dict[int, Any] = {}
            for agg in aggregates:
                acc = make_aggregate(agg.name, agg.distinct)
                star = bool(agg.args) and isinstance(agg.args[0], ast.Star)
                if agg.name == "COUNT" and (star or not agg.args):
                    for _ in members:
                        acc.add(1)
                else:
                    if not agg.args:
                        raise ExecutionError(f"{agg.name}() requires an argument")
                    for jr in members:
                        acc.add(evaluator.evaluate(agg.args[0], make_scope(jr)))
                computed[id(agg)] = acc.result()
            agg_eval = _AggregateEvaluator(run_subquery, computed)
            rep_scope = (
                make_scope(members[0])
                if members
                else Scope({}, {}, frozenset(), None)
            )
            if stmt.having is not None and not agg_eval.evaluate_predicate(
                stmt.having, rep_scope
            ):
                continue
            row = tuple(agg_eval.evaluate(item.expr, rep_scope) for item in items)
            out_rows.append(row)
            if stmt.order_by:
                order_keys.append(
                    self._order_key(stmt.order_by, items, row, rep_scope, agg_eval)
                )
        return out_rows, order_keys

    def _join_relation(
        self, left_rows, left_sources, right, kind, condition, where,
        evaluator, outer, statement_sources=None,
    ) -> list[_JoinedRow]:
        """Fold ``right`` onto the joined relation using the planned strategy."""
        trace = self.db.tracer.current()
        started = perf_counter() if trace is not None else 0.0
        plan = plan_join(
            kind,
            condition,
            where,
            [(s.binding, s.columns) for s in left_sources],
            right.binding,
            right.columns,
            allow_hash=self.db.planner_options.get("enable_hash_join", True),
            statement_sources=statement_sources,
        )
        if plan.strategy == "hash":
            self.db.bump_planner_stat("hash_joins")
            result = self._hash_join(
                left_rows, left_sources, right, plan, evaluator, outer
            )
        elif plan.strategy == "cross":
            result = [
                jr.extended(right.binding, row)
                for jr in left_rows
                for row in right.rows
            ]
        else:
            self.db.bump_planner_stat("nested_loop_joins")
            result = self._nested_loop_join(
                left_rows, left_sources, right, kind, condition, evaluator, outer
            )
        if trace is not None:
            trace.record_join(
                right.binding, plan.strategy, len(result), perf_counter() - started
            )
        return result

    @staticmethod
    def _join_key_valid(key: tuple) -> bool:
        # SQL equality is never true against NULL; NaN != NaN guards the
        # dict-identity shortcut that would otherwise match a shared object
        return not any(v is None or v != v for v in key)

    def _hash_join(
        self, left_rows, left_sources, right, plan: JoinPlan, evaluator, outer
    ) -> list[_JoinedRow]:
        right_binding = right.binding
        right_key_columns = [k.right_column for k in plan.keys]
        left_key_columns = [(k.left_binding, k.left_column) for k in plan.keys]

        buckets: dict[tuple, list[tuple[int, Row]]] = {}
        for index, row in enumerate(right.rows):
            key = tuple(row.get(c) for c in right_key_columns)
            if self._join_key_valid(key):
                buckets.setdefault(key, []).append((index, row))

        residual = plan.residual
        pair_layout = (
            _ScopeLayout(left_sources + [right], outer)
            if residual is not None
            else None
        )
        # probe-side residuals run once per candidate pair: compile them
        # (falling back to the interpreter for subquery-bearing residuals)
        residual_fn = (
            self._compile_filter(residual, pair_layout)
            if residual is not None
            else None
        )
        kind = plan.kind
        track_rights = kind == "RIGHT"
        matched_rights: set[int] = set()
        result: list[_JoinedRow] = []
        empty: list = []
        for jr in left_rows:
            parts = jr.parts
            key = tuple(
                None if (row := parts.get(binding)) is None else row.get(column)
                for binding, column in left_key_columns
            )
            matches = (
                buckets.get(key, empty) if self._join_key_valid(key) else empty
            )
            matched = False
            for index, right_row in matches:
                if residual is not None:
                    if residual_fn is not None:
                        keep = residual_fn(
                            _PartsOverlay(parts, right_binding, right_row)
                        )
                    else:
                        keep = evaluator.evaluate_predicate(
                            residual,
                            pair_layout.pair_scope(jr, right_binding, right_row),
                        )
                    if not keep:
                        continue
                result.append(jr.extended(right_binding, right_row))
                matched = True
                if track_rights:
                    matched_rights.add(index)
            if kind == "LEFT" and not matched:
                result.append(jr.extended(right_binding, None))
        if kind == "RIGHT":
            empty_left = _JoinedRow(
                {source.binding: None for source in left_sources}
            )
            for index, row in enumerate(right.rows):
                if index not in matched_rights:
                    result.append(empty_left.extended(right_binding, row))
        return result

    def _nested_loop_join(
        self, left_rows, left_sources, right, kind, condition, evaluator, outer
    ) -> list[_JoinedRow]:
        layout = _ScopeLayout(left_sources + [right], outer)
        binding = right.binding
        result: list[_JoinedRow] = []
        if kind in ("INNER", "LEFT"):
            for jr in left_rows:
                matched = False
                for row in right.rows:
                    if evaluator.evaluate_predicate(
                        condition, layout.pair_scope(jr, binding, row)
                    ):
                        result.append(jr.extended(binding, row))
                        matched = True
                if kind == "LEFT" and not matched:
                    result.append(jr.extended(binding, None))
            return result
        if kind == "RIGHT":
            matched_rights: set[int] = set()
            for jr in left_rows:
                for index, row in enumerate(right.rows):
                    if evaluator.evaluate_predicate(
                        condition, layout.pair_scope(jr, binding, row)
                    ):
                        result.append(jr.extended(binding, row))
                        matched_rights.add(index)
            empty_left = _JoinedRow(
                {source.binding: None for source in left_sources}
            )
            for index, row in enumerate(right.rows):
                if index not in matched_rights:
                    result.append(empty_left.extended(binding, row))
            return result
        raise ExecutionError(f"unsupported join kind {kind}")

    def _resolve_source(
        self,
        source: "ast.TableRef | ast.SubqueryRef",
        session: "Session",
        outer: Scope | None,
        where: ast.Expr | None = None,
        statement_sources: list[tuple[str, list[str] | None]] | None = None,
        order_insensitive: bool = False,
    ) -> _Source:
        trace = self.db.tracer.current()
        started = perf_counter() if trace is not None else 0.0
        scan_kind = "seq"
        examined = 0
        if isinstance(source, ast.SubqueryRef):
            columns, rows = self._run_select(source.subquery, session, outer)
            derived_rows = _tuple_rows(columns, rows)
            resolved = _Source(source.alias, columns, derived_rows)
            scan_kind, examined = "subquery", len(derived_rows)
        elif is_system_relation(source.name):
            # observability system views: virtual read-only relations
            # served from already-synchronized snapshots, so no table lock
            # is taken — introspection never blocks the system
            columns, dict_rows = system_view_rows(self.db, source.name)
            resolved = _Source(source.binding, columns, dict_rows)
            scan_kind, examined = "system", len(dict_rows)
        elif self.db.catalog.has_view(source.name):
            view = self.db.catalog.view(source.name)
            columns, rows = self._run_select(view.select, session, outer)
            derived_rows = _tuple_rows(columns, rows)
            resolved = _Source(source.binding, columns, derived_rows)
            scan_kind, examined = "view", len(derived_rows)
        else:
            # reads take a shared table lock, held to transaction end
            # (no-op without a lock manager); views never reach this
            # branch — their expansion re-enters here per underlying
            # table. Schema resolved after the lock grant (see
            # _locked_table): a scan that blocked behind DROP + CREATE
            # must see the recreated columns
            schema = self._locked_table(session, source.name, "S")
            heap = self.db.heap(schema.name)
            # access-path planning: probe a covering index for top-level
            # equality conjuncts, or slice a sorted index for range
            # conjuncts; the residual WHERE still applies afterwards, so
            # both are purely scan reductions
            bindings = extract_equality_bindings(
                where, source.binding, statement_sources
            )
            ranges = extract_range_bindings(
                where, source.binding, statement_sources
            )
            unions = extract_union_bindings(
                where, source.binding, statement_sources
            )
            path, index, key = choose_access_path(
                schema.name,
                heap,
                bindings,
                ranges,
                allow_index=self.db.planner_options.get(
                    "enable_index_scan", True
                ),
                unions=unions,
                stats=self._stats_for(schema.name),
            )
            if path.kind == "index":
                self.db.bump_planner_stat("index_scans")
                rids: "list[int] | set[int]" = index.probe(key)
            elif path.kind == "range":
                self.db.bump_planner_stat("range_scans")
                rng = path.range
                rids = index.range_rids(
                    path.prefix_values,
                    rng.low,
                    rng.high,
                    rng.incl_low,
                    rng.incl_high,
                )
            elif path.kind == "union":
                self.db.bump_planner_stat("union_scans")
                rids = self._union_rids(index, path.union)
            else:
                rids = None
            if rids is not None:
                # probed rids come back in rid order so the source feeds
                # the pipeline exactly like a seq scan would — except when
                # the statement's output provably ignores row order (pure
                # COUNT aggregation), where the sort is skipped
                if not order_insensitive:
                    rids = sorted(rids)
                rows = []
                for rid in rids:
                    row = heap.get(rid)  # fetched once per rid
                    if row is not None:
                        rows.append(dict(row))
            else:
                self.db.bump_planner_stat("seq_scans")
                # copy: live heap dicts are mutated in place by in-statement
                # schema changes and must not alias an in-flight scan
                rows = [dict(row) for _, row in heap.rows()]
            resolved = _Source(source.binding, schema.column_names(), rows)
            scan_kind, examined = path.kind, len(rows)
        if statement_sources is not None:
            self._prefilter_source(resolved, where, statement_sources)
        if trace is not None:
            trace.record_scan(
                resolved.binding,
                scan_kind,
                len(resolved.rows),
                examined,
                perf_counter() - started,
            )
        return resolved

    def _stats_for(self, table: str):
        """ANALYZE product for ``table`` (staleness is checked by the
        planner against the live heap's uid)."""
        return self.db.catalog.statistics.get(table.lower())

    @staticmethod
    def _union_rids(index, union) -> set[int]:
        """Deduplicated rids of every union member: hash probes for
        points on a hash index, equality-run / range slices on a btree.
        Over-approximation (ordering keys coalesce 1/1.0/TRUE) is fine —
        the full WHERE is re-applied to the candidates."""
        rids: set[int] = set()
        if index.kind == "hash":
            for value in union.points:
                rids |= index.probe((value,))
            return rids
        for value in union.points:
            rids.update(index.range_rids((value,)))
        for rng in union.ranges:
            rids.update(
                index.range_rids(
                    (), rng.low, rng.high, rng.incl_low, rng.incl_high
                )
            )
        return rids

    def _compile_filter(self, expr: ast.Expr | None, layout: _ScopeLayout):
        """Compile a predicate for direct parts-based evaluation.

        Returns ``fn(parts) -> bool`` or ``None`` (interpreter required,
        or compiled predicates disabled via ``planner_options``)."""
        if expr is None:
            return None
        if not self.db.planner_options.get("enable_compiled_predicates", True):
            return None
        return compile_predicate(expr, _layout_resolver(layout))

    def _explain_ordered_scan(self, stmt: ast.SelectStatement) -> str | None:
        """EXPLAIN text for the ordered-scan fast path, when it applies."""
        if not self._ordered_scan_shape(stmt):
            return None
        src = stmt.from_sources[0]
        if self.db.catalog.has_view(src.name) or not self.db.catalog.has_table(
            src.name
        ):
            return None
        plan = self._order_columns_of(stmt)
        if plan is None:
            return None
        schema = self.db.catalog.table(src.name)
        heap = self.db.heap(schema.name)
        match = self._match_ordered_index(stmt, src.binding, schema, heap, plan)
        if match is None:
            return None
        index, prefix_values, rng, reverse = match
        conditions = [
            f"{column} = {expr_to_sql(ast.Literal(value))}"
            for column, value in zip(index.columns, prefix_values)
        ]
        if rng is not None:
            conditions.append(rng.describe(index.columns[len(prefix_values)]))
        order_text = ", ".join(plan[0]) + (" DESC" if reverse else "")
        line = (
            f"Ordered Index Scan using {index.name} on {schema.name} "
            f"(ORDER BY {order_text})"
        )
        if conditions:
            line += f" (cond: {' AND '.join(conditions)})"
        if stmt.limit is not None:
            line += f" (limit {stmt.limit})"
        return line

    @staticmethod
    def _ordered_scan_shape(stmt: ast.SelectStatement) -> bool:
        """Structural gate for the ordered-scan fast path: one base-table
        source, a real ORDER BY, and no machinery (grouping, aggregates,
        DISTINCT, set ops) between scan order and output order. Mirrors
        the gate in :meth:`_run_select`; EXPLAIN uses it to report the
        plan without executing."""
        if stmt.group_by or stmt.distinct or stmt.set_op is not None:
            return False
        if not stmt.order_by or len(stmt.from_sources) != 1 or stmt.joins:
            return False
        if not isinstance(stmt.from_sources[0], ast.TableRef):
            return False
        aggregates: list[ast.FunctionCall] = []
        for item in stmt.items:
            _collect_aggregates(item.expr, aggregates)
        _collect_aggregates(stmt.having, aggregates)
        for order in stmt.order_by:
            _collect_aggregates(order.expr, aggregates)
        return not aggregates

    def _order_columns_of(
        self, stmt: ast.SelectStatement
    ) -> tuple[list[str], bool] | None:
        """ORDER BY as (lowered column list, reverse) when every item is a
        plain same-direction column of the single source (not shadowed by
        an output alias); DESC only for single columns."""
        directions = {order.descending for order in stmt.order_by}
        if len(directions) != 1:
            return None  # mixed ASC/DESC: no single index order matches
        reverse = directions.pop()
        aliases = {item.alias.lower() for item in stmt.items if item.alias}
        binding_key = stmt.from_sources[0].binding.lower()
        order_columns: list[str] = []
        for order in stmt.order_by:
            expr = order.expr
            if not isinstance(expr, ast.ColumnRef):
                return None
            if expr.table is not None and expr.table.lower() != binding_key:
                return None
            if expr.table is None and expr.name.lower() in aliases:
                return None  # orders by the output item, not the column
            order_columns.append(expr.name.lower())
        if reverse and len(order_columns) != 1:
            return None
        return order_columns, reverse

    def _match_ordered_index(
        self,
        stmt: ast.SelectStatement,
        binding: str,
        schema: TableSchema,
        heap: HeapTable,
        plan: tuple[list[str], bool],
    ):
        """A sorted index whose order satisfies the statement's ORDER BY:
        columns are exactly the WHERE-equality-bound prefix followed by
        the ORDER BY columns. Returns ``(index, prefix_values, range,
        reverse)`` or ``None``."""
        if not self.db.planner_options.get("enable_index_scan", True):
            return None
        order_columns, reverse = plan
        sources = [(binding, schema.column_names())]
        bindings = extract_equality_bindings(stmt.where, binding, sources)
        ranges = extract_range_bindings(stmt.where, binding, sources)
        by_column = {b.column: b.value for b in bindings}
        chosen = None
        for index in heap.indexes.values():
            if index.kind != "btree":
                continue
            columns = tuple(c.lower() for c in index.columns)
            prefix_len = len(columns) - len(order_columns)
            if prefix_len < 0 or list(columns[prefix_len:]) != order_columns:
                continue
            if all(c in by_column for c in columns[:prefix_len]):
                chosen = (index, prefix_len)
                break
        if chosen is None:
            return None
        index, prefix_len = chosen
        # cost check: a fully equality-bound probe (or a disjunctive union
        # probe set) is strictly more selective than scanning in order,
        # and a range on a column this index does not cover prunes rows
        # the ordered scan would have to filter one by one — in these
        # cases the generic path plus the bounded top-N sort wins
        unions = extract_union_bindings(stmt.where, binding, sources)
        path, _, _ = choose_access_path(
            schema.name,
            heap,
            bindings,
            ranges,
            unions=unions,
            stats=self._stats_for(schema.name),
        )
        if path.kind in ("index", "union"):
            return None
        if path.kind == "range":
            covered = {c.lower() for c in index.columns}
            if (path.range_column or "").lower() not in covered:
                return None
        prefix_values = tuple(
            by_column[c.lower()] for c in index.columns[:prefix_len]
        )
        rng = ranges.get(index.columns[prefix_len].lower())
        return index, prefix_values, rng, reverse

    def _try_ordered_scan(
        self,
        stmt: ast.SelectStatement,
        session: "Session",
        outer: Scope | None,
        evaluator: Evaluator,
    ) -> _Source | None:
        """Resolve a single-table SELECT through a sorted index in ORDER BY
        order, or return ``None``.

        Applies when every ORDER BY item is a plain same-direction column
        of the table (not shadowed by an output alias) and some sorted
        index's columns are exactly the WHERE-equality-bound prefix
        followed by the ORDER BY columns — then index order *is* the
        statement's sort order, ties included: equal keys store rids
        ascending, matching the stable sort over a rid-ordered scan.
        DESC is served for single-column suffixes only (see
        :meth:`SortedIndex.ordered_rids` for why reverse order is not a
        plain reversal). The returned source has the WHERE predicate
        already applied, stopping after OFFSET+LIMIT surviving rows — the
        early exit that makes ``ORDER BY ... LIMIT k`` O(k) instead of
        O(n log n). Rows past the exit are never evaluated, so a
        predicate whose error only a later row would trigger does not
        raise here — the planner's documented error-surfacing contract
        (see :mod:`repro.minidb.planner`), shared with every other
        row-pruning plan.
        """
        db = self.db
        src = stmt.from_sources[0]
        if db.catalog.has_view(src.name) or not db.catalog.has_table(src.name):
            return None
        plan = self._order_columns_of(stmt)
        if plan is None:
            return None
        schema = self._locked_table(session, src.name, "S")
        heap = db.heap(schema.name)
        match = self._match_ordered_index(stmt, src.binding, schema, heap, plan)
        if match is None:
            return None
        index, prefix_values, rng, reverse = match
        if rng is None:
            start, end = index.slice_bounds(prefix_values)
        else:
            start, end = index.slice_bounds(
                prefix_values, rng.low, rng.high, rng.incl_low, rng.incl_high
            )
        db.bump_planner_stat("ordered_scans")
        trace = db.tracer.current()
        started = perf_counter() if trace is not None else 0.0
        source = _Source(src.binding, schema.column_names(), [])
        layout = _ScopeLayout([source], outer)
        where = stmt.where
        where_fn = self._compile_filter(where, layout)
        needed = (
            stmt.limit + (stmt.offset or 0) if stmt.limit is not None else None
        )
        binding = source.binding
        rows = source.rows
        examined = 0
        for rid in index.ordered_rids(reverse, start, end, prefix_values):
            if needed is not None and len(rows) >= needed:
                break
            examined += 1
            row = heap.get(rid)
            if row is None:
                continue
            row = dict(row)
            if where is not None:
                if where_fn is not None:
                    keep = where_fn({binding: row})
                else:
                    keep = evaluator.evaluate_predicate(
                        where, layout.scope_parts({binding: row})
                    )
                if not keep:
                    continue
            rows.append(row)
        if trace is not None:
            trace.record_scan(
                binding, "ordered", len(rows), examined, perf_counter() - started
            )
        return source

    # ------------------------------------------------- column-batch pipeline

    def _batch_select_shape(self, stmt: ast.SelectStatement) -> bool:
        """Structural gate for the column-batch pipeline: enabled via
        ``planner_options`` and exactly one plain base-table source with
        no joins. Takes no locks, so EXPLAIN can report the plan without
        executing; an unknown table falls through to the row path, which
        raises the usual error."""
        if not self.db.planner_options.get("enable_batch_execution", True):
            return False
        if len(stmt.from_sources) != 1 or stmt.joins:
            return False
        src = stmt.from_sources[0]
        if not isinstance(src, ast.TableRef):
            return False
        if is_system_relation(src.name) or self.db.catalog.has_view(src.name):
            return False
        return self.db.catalog.has_table(src.name)

    @staticmethod
    def _referenced_columns(
        stmt: ast.SelectStatement, all_columns: list[str]
    ) -> list[str]:
        """Table columns the statement can touch, in schema order.

        Statically walks every expression position; whenever the
        reference set is not determinable (stars, subqueries) every
        column is materialized — exactly the cases where per-row
        fallback evaluation could read an arbitrary name."""
        refs: set[str] = set()
        exprs: list[ast.Expr | None] = [item.expr for item in stmt.items]
        exprs.append(stmt.where)
        exprs.extend(stmt.group_by)
        exprs.append(stmt.having)
        exprs.extend(order.expr for order in stmt.order_by)
        for expr in exprs:
            if not _collect_column_refs(expr, refs):
                return list(all_columns)
        return [c for c in all_columns if c.lower() in refs]

    def _run_select_batched(
        self,
        stmt: ast.SelectStatement,
        session: "Session",
        outer: Scope | None,
        evaluator: Evaluator,
        aggregates: list[ast.FunctionCall],
        grouped: bool,
        order_insensitive: bool,
        run_subquery,
    ) -> tuple[list[str], list[tuple], list[tuple]]:
        """Single-table SELECT over the column-batch pipeline.

        Scans the heap batch-at-a-time (through the same access-path
        planning as :meth:`_resolve_source`), applies WHERE as a
        vectorized mask, and projects/aggregates over the surviving
        column slices. Anything the batch compiler punts on is evaluated
        per row *inside* the batch through a :class:`_BatchRowView`, so
        the pipeline shape is preserved even for interpreter-only
        expressions. Error surfacing follows the planner's documented
        contract: batch kernels defer per-element errors, and consumers
        raise the first deferred error in row-major order — the moment
        the row-at-a-time plan would have raised it. One divergence is
        pinned here: on an erroring WHERE the scan trace event reports
        only the batches examined before the error, where the row path
        (scan and filter being separate stages) would have reported the
        full table; statements that complete report identical events.
        """
        db = self.db
        src = stmt.from_sources[0]
        schema = self._locked_table(session, src.name, "S")
        heap = db.heap(schema.name)
        all_columns = schema.column_names()
        source = _Source(src.binding, all_columns, [])
        layout = _ScopeLayout([source], outer)
        compiled_ok = db.planner_options.get("enable_compiled_predicates", True)
        resolver = _batch_layout_resolver(layout)

        def batch_compile(expr):
            # the vectorized kernels lift the compiled-predicate seam, so
            # they honor the same planner toggle: with compiled predicates
            # disabled every expression takes the per-row fallback
            if not compiled_ok:
                return None
            try:
                return compile_batch_expr(expr, resolver)
            except CannotCompile:
                return None

        needed = self._referenced_columns(stmt, all_columns)
        view = _BatchRowView()
        parts: dict[str, Any] = {src.binding: view}

        where = stmt.where
        batch_where = batch_compile(where) if where is not None else None
        row_where = None
        if where is not None and batch_where is None:
            row_where = self._compile_filter(where, layout)

        # access-path planning: identical probe/range/union reductions to
        # the row path (and the same planner counters), with batch_scans
        # recording that the scan ran vectorized
        bindings = extract_equality_bindings(where, src.binding, None)
        ranges = extract_range_bindings(where, src.binding, None)
        unions = extract_union_bindings(where, src.binding, None)
        path, index, key = choose_access_path(
            schema.name,
            heap,
            bindings,
            ranges,
            allow_index=db.planner_options.get("enable_index_scan", True),
            unions=unions,
            stats=self._stats_for(schema.name),
        )
        if path.kind == "index":
            db.bump_planner_stat("index_scans")
            rids: "list[int] | set[int] | None" = index.probe(key)
        elif path.kind == "range":
            db.bump_planner_stat("range_scans")
            rng = path.range
            rids = index.range_rids(
                path.prefix_values,
                rng.low,
                rng.high,
                rng.incl_low,
                rng.incl_high,
            )
        elif path.kind == "union":
            db.bump_planner_stat("union_scans")
            rids = self._union_rids(index, path.union)
        else:
            db.bump_planner_stat("seq_scans")
            rids = None
        db.bump_planner_stat("batch_scans")

        batch_size = db.planner_options.get("batch_size", DEFAULT_BATCH_SIZE)
        if not isinstance(batch_size, int) or batch_size <= 0:
            batch_size = DEFAULT_BATCH_SIZE
        if rids is not None:
            rid_list = list(rids) if order_insensitive else sorted(rids)

            def rid_batches():
                for start in range(0, len(rid_list), batch_size):
                    yield heap.fetch_batch(
                        rid_list[start : start + batch_size], needed
                    )

            batch_iter = rid_batches()
        else:
            batch_iter = heap.rows_batch(batch_size, needed)

        trace = db.tracer.current()
        started = perf_counter() if trace is not None else 0.0
        sur_cols: dict[str, list] = {name: [] for name in needed}
        n_sur = 0
        examined = 0
        try:
            if where is None:
                for batch in batch_iter:
                    examined += batch.length
                    for name in needed:
                        sur_cols[name].extend(batch.columns[name])
                    n_sur += batch.length
            elif batch_where is not None:
                for batch in batch_iter:
                    examined += batch.length
                    mask = batch_where(batch)
                    keep: list[int] = []
                    append = keep.append
                    for i, v in enumerate(mask):
                        if v is True:
                            append(i)
                        elif type(v) is BatchError:
                            raise v.exc
                    if len(keep) == batch.length:
                        for name in needed:
                            sur_cols[name].extend(batch.columns[name])
                    elif keep:
                        for name in needed:
                            col = batch.columns[name]
                            sur_cols[name].extend([col[i] for i in keep])
                    n_sur += len(keep)
            else:
                # per-row fallback inside the batch: subqueries, or
                # compiled predicates disabled
                for batch in batch_iter:
                    examined += batch.length
                    view.columns = batch.columns
                    keep = []
                    for i in range(batch.length):
                        view.index = i
                        if row_where is not None:
                            ok = row_where(parts)
                        else:
                            ok = evaluator.evaluate_predicate(
                                where, layout.scope_parts(parts)
                            )
                        if ok:
                            keep.append(i)
                    if len(keep) == batch.length:
                        for name in needed:
                            sur_cols[name].extend(batch.columns[name])
                    elif keep:
                        for name in needed:
                            col = batch.columns[name]
                            sur_cols[name].extend([col[i] for i in keep])
                    n_sur += len(keep)
        finally:
            if trace is not None:
                trace.record_scan(
                    src.binding,
                    path.kind,
                    examined,
                    examined,
                    perf_counter() - started,
                )

        items = self._expand_items(stmt.items, [source])
        out_columns = [
            self._item_name(item, index) for index, item in enumerate(items)
        ]
        sur_batch = RowBatch(None, sur_cols, n_sur)
        view.columns = sur_cols
        if grouped:
            out_rows, order_keys = self._run_grouped_batched(
                stmt, items, sur_batch, view, parts, layout, evaluator,
                aggregates, run_subquery, batch_compile,
            )
        else:
            out_rows, order_keys = self._project_batched(
                stmt, items, sur_batch, view, parts, layout, evaluator,
                batch_compile,
            )
        return out_columns, out_rows, order_keys

    def _project_batched(
        self, stmt, items, sur_batch, view, parts, layout, evaluator,
        batch_compile,
    ) -> tuple[list[tuple], list[tuple]]:
        """Ungrouped projection over surviving column slices — no per-row
        dict is ever built. All-vectorized select lists without ORDER BY
        transpose the item columns straight into output tuples."""
        n = sur_batch.length
        plans: list[tuple[bool, Any]] = []
        all_vec = True
        for item in items:
            fn = batch_compile(item.expr)
            if fn is not None:
                plans.append((True, fn(sur_batch)))
            else:
                all_vec = False
                plans.append((False, item.expr))
        if all_vec and not stmt.order_by:
            cols = [payload for _, payload in plans]
            _raise_first_batch_error(cols)
            return list(zip(*cols)) if n else [], []
        order_plans = (
            self._batched_order_plans(stmt.order_by, items, batch_compile, sur_batch)
            if stmt.order_by
            else None
        )
        scope = layout.scope_parts(parts)
        out_rows: list[tuple] = []
        order_keys: list[tuple] = []
        for i in range(n):
            view.index = i
            values = []
            for is_vec, payload in plans:
                if is_vec:
                    v = payload[i]
                    if type(v) is BatchError:
                        raise v.exc
                    values.append(v)
                else:
                    values.append(evaluator.evaluate(payload, scope))
            row = tuple(values)
            out_rows.append(row)
            if order_plans is not None:
                order_keys.append(
                    self._batched_order_key(order_plans, row, i, scope, evaluator)
                )
        return out_rows, order_keys

    def _run_grouped_batched(
        self, stmt, items, sur_batch, view, parts, layout, evaluator,
        aggregates, run_subquery, batch_compile,
    ) -> tuple[list[tuple], list[tuple]]:
        """Grouped/aggregate evaluation over surviving column slices.

        Group keys come from vectorized key columns where compilable;
        groups hold member *indexes* into the slices, and each aggregate
        folds a column slice directly. Accumulation order (group, then
        aggregate, then member) matches :meth:`_run_grouped` exactly, so
        deferred errors surface at the same point the row path raises."""
        n = sur_batch.length
        scope = layout.scope_parts(parts)
        groups: dict[tuple, list[int]] = {}
        group_order: list[tuple] = []
        if stmt.group_by:
            key_plans: list[tuple[bool, Any]] = []
            for g in stmt.group_by:
                fn = batch_compile(g)
                if fn is not None:
                    key_plans.append((True, fn(sur_batch)))
                else:
                    key_plans.append((False, g))
            for i in range(n):
                view.index = i
                key_values = []
                for is_vec, payload in key_plans:
                    if is_vec:
                        v = payload[i]
                        if type(v) is BatchError:
                            raise v.exc
                    else:
                        v = evaluator.evaluate(payload, scope)
                    key_values.append(v)
                key = tuple(
                    _NULL_SENTINEL if v is None else (type(v).__name__, v)
                    for v in key_values
                )
                members = groups.get(key)
                if members is None:
                    groups[key] = members = []
                    group_order.append(key)
                members.append(i)
        elif n:
            groups[()] = list(range(n))
            group_order.append(())
        if not stmt.group_by and not groups:
            groups[()] = []
            group_order.append(())

        agg_plans: list[tuple[str, Any]] = []
        for agg in aggregates:
            star = bool(agg.args) and isinstance(agg.args[0], ast.Star)
            if agg.name == "COUNT" and (star or not agg.args):
                agg_plans.append(("count", None))
            elif not agg.args:
                agg_plans.append(("malformed", None))
            else:
                fn = batch_compile(agg.args[0])
                if fn is not None:
                    agg_plans.append(("vec", fn(sur_batch)))
                else:
                    agg_plans.append(("expr", agg.args[0]))

        out_rows: list[tuple] = []
        order_keys: list[tuple] = []
        for group_key in group_order:
            members = groups[group_key]
            computed: dict[int, Any] = {}
            for agg, (kind, payload) in zip(aggregates, agg_plans):
                acc = make_aggregate(agg.name, agg.distinct)
                if kind == "count":
                    for _ in members:
                        acc.add(1)
                elif kind == "malformed":
                    raise ExecutionError(f"{agg.name}() requires an argument")
                elif kind == "vec":
                    for i in members:
                        v = payload[i]
                        if type(v) is BatchError:
                            raise v.exc
                        acc.add(v)
                else:
                    for i in members:
                        view.index = i
                        acc.add(evaluator.evaluate(payload, scope))
                computed[id(agg)] = acc.result()
            agg_eval = _AggregateEvaluator(run_subquery, computed)
            if members:
                view.index = members[0]
                rep_scope = scope
            else:
                rep_scope = Scope({}, {}, frozenset(), None)
            if stmt.having is not None and not agg_eval.evaluate_predicate(
                stmt.having, rep_scope
            ):
                continue
            row = tuple(agg_eval.evaluate(item.expr, rep_scope) for item in items)
            out_rows.append(row)
            if stmt.order_by:
                # not vectorized: aggregate references in ORDER BY need the
                # per-group _AggregateEvaluator, so reuse the row path's key
                order_keys.append(
                    self._order_key(stmt.order_by, items, row, rep_scope, agg_eval)
                )
        return out_rows, order_keys

    def _batched_order_plans(self, order_by, items, batch_compile, sur_batch):
        """Per-ORDER-BY-item plan mirroring :meth:`_order_value`'s
        resolution: ordinal, output-alias, vectorized column, or
        interpreted expression."""
        plans = []
        for order in order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                plans.append(("ordinal", expr.value, order.descending))
                continue
            if isinstance(expr, ast.ColumnRef) and expr.table is None:
                alias_index = None
                for index, item in enumerate(items):
                    if item.alias and item.alias.lower() == expr.name.lower():
                        alias_index = index
                        break
                if alias_index is not None:
                    plans.append(("alias", alias_index, order.descending))
                    continue
            fn = batch_compile(expr)
            if fn is not None:
                plans.append(("vec", fn(sur_batch), order.descending))
            else:
                plans.append(("expr", expr, order.descending))
        return plans

    def _batched_order_key(self, plans, row, i, scope, evaluator) -> tuple:
        key_parts = []
        for kind, payload, descending in plans:
            if kind == "ordinal":
                if not (1 <= payload <= len(row)):
                    raise ExecutionError(
                        f"ORDER BY position {payload} is out of range"
                    )
                value = row[payload - 1]
            elif kind == "alias":
                value = row[payload]
            elif kind == "vec":
                value = payload[i]
                if type(value) is BatchError:
                    raise value.exc
            else:
                value = evaluator.evaluate(payload, scope)
            element = _sort_key_element(value)
            if descending:
                element = (element[0], _Reversed(element[1]), _Reversed(element[2]))
            key_parts.append(element)
        return tuple(key_parts)

    def _statement_sources(
        self, stmt: ast.SelectStatement
    ) -> list[tuple[str, list[str] | None]]:
        """(binding, columns) for every source; None = unknown (view/derived)."""
        sources: list[tuple[str, list[str] | None]] = []
        for src in list(stmt.from_sources) + [join.source for join in stmt.joins]:
            if isinstance(src, ast.TableRef):
                if self.db.catalog.has_table(src.name):
                    columns = self.db.catalog.table(src.name).column_names()
                else:
                    columns = None
                sources.append((src.binding, columns))
            else:
                sources.append((src.alias, None))
        return sources

    def _prefilter_source(
        self, source: _Source, where: ast.Expr | None, statement_sources
    ) -> None:
        """Apply pushed-down null-rejecting single-source conjuncts in place."""
        predicate = extract_pushdown_filter(
            where, source.binding, source.columns, statement_sources
        )
        if predicate is None:
            return
        layout = _ScopeLayout([source], None)
        binding = source.binding
        predicate_fn = self._compile_filter(predicate, layout)
        if predicate_fn is None:
            evaluator = Evaluator(None)  # pushdown conjuncts are subquery-free
            predicate_fn = lambda parts: evaluator.evaluate_predicate(  # noqa: E731
                predicate, layout.scope_parts(parts)
            )

        def keep(row: Row) -> bool:
            # on evaluation errors (e.g. type-mismatched ordering), keep the
            # row and defer to the final WHERE pass: it raises only if the
            # row survives the joins, exactly as without pushdown
            try:
                return predicate_fn({binding: row})
            except ExecutionError:
                return True

        source.rows = [row for row in source.rows if keep(row)]

    # ---------------------------------------------------------------- EXPLAIN

    def _exec_ExplainStatement(
        self, stmt: ast.ExplainStatement, session: "Session"
    ) -> ResultSet:
        select = stmt.select
        table_of_binding: dict[str, str] = {}
        columns_of_binding: dict[str, list[str] | None] = {}
        sources = list(select.from_sources) + [join.source for join in select.joins]
        for source in sources:
            if isinstance(source, ast.TableRef):
                if self.db.catalog.has_table(source.name):
                    schema = self.db.catalog.table(source.name)
                    table_of_binding[source.binding] = schema.name
                    columns_of_binding[source.binding] = schema.column_names()
                else:  # view / system view: column set unknown statically
                    columns_of_binding[source.binding] = None
            else:
                columns_of_binding[source.alias] = None
        paths = plan_select_paths(
            select,
            table_of_binding,
            self.db.heap,
            columns_of_binding,
            allow_index=self.db.planner_options.get("enable_index_scan", True),
            stats_of_table=self._stats_for,
        )
        # plan lines paired with the source binding each describes, so the
        # ANALYZE branch can attach that binding's actual scan events
        path_of_binding = dict(zip(table_of_binding.keys(), paths))
        # the ordered-scan fast path preempts the batch pipeline at
        # runtime, so its plan line must be known before paths are
        # described with the (batched) annotation
        ordered_line = self._explain_ordered_scan(select)
        if ordered_line is None and self._batch_select_shape(select):
            for path in paths:
                path.batched = True
        lines: list[tuple[str, str | None]] = []
        described: set[str] = set()
        for source in sources:
            if not isinstance(source, ast.TableRef) or source.binding in described:
                continue
            described.add(source.binding)
            if source.binding in path_of_binding:
                lines.append(
                    (path_of_binding[source.binding].describe(), source.binding)
                )
            elif is_system_relation(source.name):
                lines.append(
                    (f"System View Scan on {source.name.lower()}", source.binding)
                )
        if ordered_line is not None:
            # the ordered scan replaces the source's generic access path
            # (the ordered-scan gate admits exactly one plain table source)
            ordered_entry = (ordered_line, select.from_sources[0].binding)
            lines = [ordered_entry] if len(lines) == 1 else lines + [ordered_entry]
        allow_hash = self.db.planner_options.get("enable_hash_join", True)
        join_lines = [
            plan.describe()
            for plan in plan_select_joins(select, columns_of_binding, allow_hash)
        ]
        if not stmt.analyze:
            rows = [(text,) for text, _ in lines]
            rows.extend((text,) for text in join_lines)
            if not rows:
                rows = [("Result (no base tables)",)]
            return ResultSet(columns=["QUERY PLAN"], rows=rows, status="EXPLAIN")
        return self._explain_analyze(select, session, lines, join_lines)

    def _explain_analyze(
        self,
        select: ast.SelectStatement,
        session: "Session",
        lines: list[tuple[str, str | None]],
        join_lines: list[str],
    ) -> ResultSet:
        """Execute ``select`` under a probe trace and annotate the plan
        lines with actual rows and per-node timings."""
        tracer = self.db.tracer
        probe = tracer.probe()
        started = perf_counter()
        try:
            _, result_rows = self._run_select(select, session, None)
        finally:
            total_s = perf_counter() - started
            tracer.release(probe)
        scans_of_binding: dict[str, list[dict]] = {}
        for event in probe.scans:
            scans_of_binding.setdefault(event["binding"], []).append(event)
        rows: list[tuple[str, ...]] = []
        for text, binding in lines:
            events = scans_of_binding.get(binding or "", [])
            rows.append((text + self._actuals_suffix(events),))
        # join events arrive in fold order (comma-folds then JOINs), the
        # same order plan_select_joins describes them in
        for index, text in enumerate(join_lines):
            if index < len(probe.joins):
                event = probe.joins[index]
                rows.append(
                    (
                        text
                        + f" (actual rows={event['rows']},"
                        f" time={event['duration_s'] * 1000.0:.3f} ms)",
                    )
                )
            else:
                rows.append((text,))
        if not rows:
            rows = [("Result (no base tables)",)]
        rows.append((f"Result rows: {len(result_rows)}",))
        rows.append((f"Execution time: {total_s * 1000.0:.3f} ms",))
        return ResultSet(columns=["QUERY PLAN"], rows=rows, status="EXPLAIN")

    @staticmethod
    def _actuals_suffix(events: list[dict]) -> str:
        if not events:
            return " (never executed)"
        loops = len(events)
        actual_rows = sum(event["rows"] for event in events)
        time_ms = sum(event["duration_s"] for event in events) * 1000.0
        if loops == 1:
            return f" (actual rows={actual_rows}, time={time_ms:.3f} ms)"
        return (
            f" (actual rows={actual_rows}, loops={loops}, time={time_ms:.3f} ms)"
        )

    @staticmethod
    def _expand_items(
        items: list[ast.SelectItem], sources: list[_Source]
    ) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                star = item.expr
                targets = (
                    [s for s in sources if s.binding.lower() == star.table.lower()]
                    if star.table
                    else sources
                )
                if star.table and not targets:
                    raise UnknownTableError(
                        f"missing FROM-clause entry for table {star.table!r}"
                    )
                if not targets:
                    raise ExecutionError("SELECT * with no FROM clause")
                for source in targets:
                    for col in source.columns:
                        expanded.append(
                            ast.SelectItem(
                                ast.ColumnRef(col, table=source.binding), alias=col
                            )
                        )
            else:
                expanded.append(item)
        return expanded

    @staticmethod
    def _item_name(item: ast.SelectItem, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FunctionCall):
            return item.expr.name.lower()
        return f"column{index + 1}"

    def _order_key(self, order_by, items, row, scope, evaluator) -> tuple:
        key_parts = []
        for order in order_by:
            value = self._order_value(order.expr, items, row, scope, evaluator)
            element = _sort_key_element(value)
            if order.descending:
                # keep the NULL/type rank ascending (NULLS LAST either way),
                # reverse only the value ordering within each type class
                element = (element[0], _Reversed(element[1]), _Reversed(element[2]))
            key_parts.append(element)
        return tuple(key_parts)

    def _order_value(self, expr, items, row, scope, evaluator):
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not (1 <= ordinal <= len(row)):
                raise ExecutionError(f"ORDER BY position {ordinal} is out of range")
            return row[ordinal - 1]
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for index, item in enumerate(items):
                if item.alias and item.alias.lower() == expr.name.lower():
                    return row[index]
        return evaluator.evaluate(expr, scope)

    @staticmethod
    def _order_by_output(order_by, columns, rows):
        lowered = [c.lower() for c in columns]

        def key(row):
            parts = []
            for order in order_by:
                expr = order.expr
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    value = row[expr.value - 1]
                elif isinstance(expr, ast.ColumnRef) and expr.name.lower() in lowered:
                    value = row[lowered.index(expr.name.lower())]
                else:
                    raise ExecutionError(
                        "ORDER BY after a set operation must use output columns"
                    )
                element = _sort_key_element(value)
                if order.descending:
                    element = (element[0], _Reversed(element[1]), _Reversed(element[2]))
                parts.append(element)
            return tuple(parts)

        return sorted(rows, key=key)

    @staticmethod
    def _distinct(rows, order_keys):
        seen: set = set()
        kept_rows, kept_keys = [], []
        for index, row in enumerate(rows):
            marker = tuple(
                _NULL_SENTINEL if v is None else (type(v).__name__, v) for v in row
            )
            if marker in seen:
                continue
            seen.add(marker)
            kept_rows.append(row)
            if order_keys:
                kept_keys.append(order_keys[index])
        return kept_rows, kept_keys

    @staticmethod
    def _apply_set_op(kind, left, right):
        def markers(rows):
            return [
                tuple(
                    _NULL_SENTINEL if v is None else (type(v).__name__, v)
                    for v in row
                )
                for row in rows
            ]

        if kind == "UNION ALL":
            return left + right
        left_markers = markers(left)
        right_markers = markers(right)
        if kind == "UNION":
            seen: set = set()
            result = []
            for marker, row in zip(left_markers + right_markers, left + right):
                if marker not in seen:
                    seen.add(marker)
                    result.append(row)
            return result
        if kind == "INTERSECT":
            right_set = set(right_markers)
            seen = set()
            result = []
            for marker, row in zip(left_markers, left):
                if marker in right_set and marker not in seen:
                    seen.add(marker)
                    result.append(row)
            return result
        if kind == "EXCEPT":
            right_set = set(right_markers)
            seen = set()
            result = []
            for marker, row in zip(left_markers, left):
                if marker not in right_set and marker not in seen:
                    seen.add(marker)
                    result.append(row)
            return result
        raise ExecutionError(f"unsupported set operation {kind}")

    # ----------------------------------------------------------------- DML

    def _evaluator(self, session: "Session") -> Evaluator:
        def run_subquery(sub: ast.SelectStatement, scope: Scope) -> list[tuple]:
            _, rows = self._run_select(sub, session, outer=scope)
            return rows

        return Evaluator(run_subquery)

    def _locked_table(
        self, session: "Session", name: str, mode: str
    ) -> TableSchema:
        """Acquire the table lock, then resolve the schema.

        Resolution must happen *after* the (name-keyed) lock is granted:
        a statement that blocked behind a concurrent DROP + CREATE of
        the same name must see the recreated schema, not the object it
        resolved before sleeping — constraint checks and column
        resolution against the stale schema would silently bypass the
        new table's contract. The pre-lock resolve only validates
        existence so an unknown table fails without touching the lock
        manager; a table dropped while we waited raises here, after the
        grant, like any other vanished relation.
        """
        schema = self.db.catalog.table(name)
        session.lock_table(schema.name, mode)
        return self.db.catalog.table(name)

    def _exec_InsertStatement(
        self, stmt: ast.InsertStatement, session: "Session"
    ) -> ResultSet:
        # DML takes an exclusive lock on its target and shared locks on
        # the tables its FK checks read, all held to transaction end
        schema = self._locked_table(session, stmt.table, "X")
        for fk in schema.foreign_keys:
            session.lock_table(fk.ref_table, "S")
        heap = self.db.heap(schema.name)
        evaluator = self._evaluator(session)
        empty_scope = Scope({}, {}, frozenset(), None)

        target_columns = stmt.columns or schema.column_names()
        for name in target_columns:
            schema.column(name)  # raises UnknownColumnError

        if stmt.select is not None:
            _, value_rows = self._run_select(stmt.select, session, outer=None)
        else:
            value_rows = [
                tuple(evaluator.evaluate(expr, empty_scope) for expr in row)
                for row in stmt.rows or []
            ]

        inserted = 0
        redo = session.tx.redo_enabled
        table_key = schema.name.lower()
        for values in value_rows:
            if len(values) != len(target_columns):
                raise ExecutionError(
                    f"INSERT has {len(values)} values but {len(target_columns)} "
                    "target columns"
                )
            row = self._build_row(schema, dict(zip(target_columns, values)), evaluator)
            self._check_row_constraints(schema, row, evaluator, session)
            rid = heap.insert(row)
            session.tx.log_undo(
                f"insert {schema.name} rid={rid}",
                lambda heap=heap, rid=rid: heap.delete(rid),
            )
            if redo:
                session.tx.log_redo(
                    {
                        "op": "insert",
                        "table": table_key,
                        "rid": rid,
                        "row": row,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            inserted += 1
        return ResultSet(rowcount=inserted, status=f"INSERT {inserted}")

    def _build_row(
        self, schema: TableSchema, provided: dict[str, Any], evaluator: Evaluator
    ) -> Row:
        provided_lower = {k.lower(): v for k, v in provided.items()}
        row: Row = {}
        empty_scope = Scope({}, {}, frozenset(), None)
        for column in schema.columns:
            key = column.name.lower()
            if key in provided_lower:
                row[column.name] = coerce(
                    provided_lower[key], column.ctype, column.name
                )
            elif column.has_default:
                default = column.default
                if isinstance(default, ast.Expr):
                    default = evaluator.evaluate(default, empty_scope)
                row[column.name] = coerce(default, column.ctype, column.name)
            else:
                row[column.name] = None
        return row

    def _check_row_constraints(
        self,
        schema: TableSchema,
        row: Row,
        evaluator: Evaluator,
        session: "Session",
    ) -> None:
        for column in schema.columns:
            if column.not_null and row.get(column.name) is None:
                raise NotNullViolation(
                    f"null value in column {column.name!r} of relation "
                    f"{schema.name!r} violates not-null constraint"
                )
        if schema.checks:
            scope = Scope(
                {},
                {k.lower(): v for k, v in row.items()},
                frozenset(),
                None,
            )
            for index, check in enumerate(schema.checks):
                value = evaluator.evaluate(check, scope)
                if value is False:
                    source = (
                        schema.check_sources[index]
                        if index < len(schema.check_sources)
                        else "<check>"
                    )
                    raise CheckViolation(
                        f"new row for relation {schema.name!r} violates check "
                        f"constraint ({source})"
                    )
        for fk in schema.foreign_keys:
            self._check_fk_exists(fk, row, session)

    def _check_fk_exists(self, fk: ForeignKey, row: Row, session: "Session") -> None:
        values = tuple(row.get(c) for c in fk.columns)
        if any(v is None for v in values):
            return  # SQL: NULL FK values pass
        ref_schema = self.db.catalog.table(fk.ref_table)
        ref_heap = self.db.heap(ref_schema.name)
        index = ref_heap.find_index(tuple(fk.ref_columns))
        if index is not None:
            if index.probe(values):
                return
        else:
            for _, ref_row in ref_heap.rows():
                if tuple(ref_row.get(c) for c in fk.ref_columns) == values:
                    return
        raise ForeignKeyViolation(
            f"insert or update violates foreign key constraint: "
            f"({', '.join(fk.columns)})={values!r} is not present in "
            f"{fk.ref_table}({', '.join(fk.ref_columns)})"
        )

    def _referencing_violation(
        self, schema: TableSchema, old_row: Row, session: "Session"
    ) -> str | None:
        """If rows elsewhere reference ``old_row``, return a message."""
        for other_name in self.db.catalog.referencing_tables(schema.name):
            other = self.db.catalog.table(other_name)
            other_heap = self.db.heap(other.name)
            for fk in other.foreign_keys:
                if fk.ref_table.lower() != schema.name.lower():
                    continue
                key = tuple(old_row.get(c) for c in fk.ref_columns)
                if any(v is None for v in key):
                    continue
                for _, row in other_heap.rows():
                    if tuple(row.get(c) for c in fk.columns) == key:
                        return (
                            f"row in {schema.name!r} is still referenced by "
                            f"table {other.name!r}"
                        )
        return None

    def _exec_UpdateStatement(
        self, stmt: ast.UpdateStatement, session: "Session"
    ) -> ResultSet:
        schema = self._locked_table(session, stmt.table, "X")
        for fk in schema.foreign_keys:
            session.lock_table(fk.ref_table, "S")  # forward FK checks read these
        for other in self.db.catalog.referencing_tables(schema.name):
            session.lock_table(other, "S")  # FK back-reference checks read these
        heap = self.db.heap(schema.name)
        evaluator = self._evaluator(session)
        assignments = []
        for name, expr in stmt.assignments:
            column = schema.column(name)
            assignments.append((column, expr))

        referenced_key_columns = {
            c.lower()
            for other_name in self.db.catalog.referencing_tables(schema.name)
            for fk in self.db.catalog.table(other_name).foreign_keys
            if fk.ref_table.lower() == schema.name.lower()
            for c in fk.ref_columns
        }

        targets = self._dml_targets(schema, stmt.table, heap, stmt.where, evaluator)

        updated = 0
        for rid, old_row in targets:
            scope = self._row_scope(schema, stmt.table, old_row)
            new_row = dict(old_row)
            for column, expr in assignments:
                new_row[column.name] = coerce(
                    evaluator.evaluate(expr, scope), column.ctype, column.name
                )
            self._check_row_constraints(schema, new_row, evaluator, session)
            changed_ref_keys = any(
                old_row.get(c) != new_row.get(c)
                for c in old_row
                if c.lower() in referenced_key_columns
            )
            if changed_ref_keys:
                message = self._referencing_violation(schema, old_row, session)
                if message:
                    raise ForeignKeyViolation(message)
            previous = heap.update(rid, new_row)
            session.tx.log_undo(
                f"update {schema.name} rid={rid}",
                lambda heap=heap, rid=rid, prev=previous: heap.update(rid, prev),
            )
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {
                        "op": "update",
                        "table": schema.name.lower(),
                        "rid": rid,
                        "row": new_row,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            updated += 1
        return ResultSet(rowcount=updated, status=f"UPDATE {updated}")

    def _exec_DeleteStatement(
        self, stmt: ast.DeleteStatement, session: "Session"
    ) -> ResultSet:
        schema = self._locked_table(session, stmt.table, "X")
        for other in self.db.catalog.referencing_tables(schema.name):
            session.lock_table(other, "S")  # FK back-reference checks read these
        heap = self.db.heap(schema.name)
        evaluator = self._evaluator(session)

        targets = self._dml_targets(schema, stmt.table, heap, stmt.where, evaluator)

        deleted_rids = {rid for rid, _ in targets}
        for rid, row in targets:
            message = self._referencing_violation_excluding(
                schema, row, deleted_rids, session
            )
            if message:
                raise ForeignKeyViolation(message)

        deleted = 0
        for rid, _row in targets:
            old = heap.delete(rid)
            session.tx.log_undo(
                f"delete {schema.name} rid={rid}",
                lambda heap=heap, rid=rid, old=old: heap.restore(rid, old),
            )
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {
                        "op": "delete",
                        "table": schema.name.lower(),
                        "rid": rid,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            deleted += 1
        return ResultSet(rowcount=deleted, status=f"DELETE {deleted}")

    def _referencing_violation_excluding(
        self,
        schema: TableSchema,
        old_row: Row,
        _excluded_rids: set[int],
        session: "Session",
    ) -> str | None:
        # self-referencing FKs within the deleted set are tolerated only if
        # the referencing row is also being deleted — approximated by the
        # plain check for non-self references.
        return self._referencing_violation(schema, old_row, session)

    def _dml_targets(
        self,
        schema: TableSchema,
        binding: str,
        heap: HeapTable,
        where: ast.Expr | None,
        evaluator: Evaluator,
    ) -> list[tuple[int, Row]]:
        """Resolve UPDATE/DELETE target rows through access-path planning.

        The same :func:`choose_access_path` machinery that accelerates
        SELECT sources narrows the candidate set here — a covering index
        probe or sorted-index range slice instead of the unconditional
        heap scan. Candidates always get the *full* WHERE re-applied
        (compiled when possible), and targets come back in rid order, the
        order the heap scan produced — so undo logs, WAL records, and
        constraint-error attribution are byte-identical to the seq-scan
        plan.
        """
        candidates: "list[tuple[int, Row]] | None" = None
        if where is not None:
            sources = [(binding, schema.column_names())]
            bindings = extract_equality_bindings(where, binding, sources)
            ranges = extract_range_bindings(where, binding, sources)
            unions = extract_union_bindings(where, binding, sources)
            path, index, key = choose_access_path(
                schema.name,
                heap,
                bindings,
                ranges,
                allow_index=self.db.planner_options.get(
                    "enable_index_scan", True
                ),
                unions=unions,
                stats=self._stats_for(schema.name),
            )
            rids = None
            if path.kind == "index":
                self.db.bump_planner_stat("index_scans")
                rids = sorted(index.probe(key))
            elif path.kind == "range":
                self.db.bump_planner_stat("range_scans")
                rng = path.range
                rids = sorted(
                    index.range_rids(
                        path.prefix_values,
                        rng.low,
                        rng.high,
                        rng.incl_low,
                        rng.incl_high,
                    )
                )
            elif path.kind == "union":
                self.db.bump_planner_stat("union_scans")
                rids = sorted(self._union_rids(index, path.union))
            if rids is not None:
                candidates = []
                for rid in rids:
                    row = heap.get(rid)
                    if row is not None:
                        candidates.append((rid, row))
        if candidates is None:
            self.db.bump_planner_stat("seq_scans")
            candidates = list(heap.rows())
        if where is None:
            return candidates
        layout = _ScopeLayout([_Source(binding, schema.column_names(), [])], None)
        where_fn = self._compile_filter(where, layout)
        targets: list[tuple[int, Row]] = []
        if where_fn is not None:
            for rid, row in candidates:
                if where_fn({binding: row}):
                    targets.append((rid, row))
        else:
            for rid, row in candidates:
                scope = self._row_scope(schema, binding, row)
                if evaluator.evaluate_predicate(where, scope):
                    targets.append((rid, row))
        return targets

    @staticmethod
    def _row_scope(schema: TableSchema, binding: str, row: Row) -> Scope:
        unqualified = {k.lower(): v for k, v in row.items()}
        qualified = {f"{binding.lower()}.{k.lower()}": v for k, v in row.items()}
        qualified.update(
            {f"{schema.name.lower()}.{k.lower()}": v for k, v in row.items()}
        )
        return Scope(qualified, unqualified, frozenset(), None)

    # ----------------------------------------------------------------- DDL

    def _exec_CreateTableStatement(
        self, stmt: ast.CreateTableStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        # DDL takes an exclusive lock on the object name — for CREATE this
        # also serializes two sessions racing to create the same table
        session.lock_table(stmt.table, "X")
        if stmt.if_not_exists and catalog.has_object(stmt.table):
            return ResultSet(status="CREATE TABLE (exists)")

        columns: list[Column] = []
        primary_key = list(stmt.primary_key)
        uniques = [tuple(u) for u in stmt.uniques]
        foreign_keys: list[ForeignKey] = []
        checks: list[ast.Expr] = list(stmt.checks)
        check_sources = [expr_to_sql(check) for check in stmt.checks]
        evaluator = self._evaluator(session)
        empty_scope = Scope({}, {}, frozenset(), None)

        for cdef in stmt.columns:
            ctype = ColumnType.parse(cdef.declared_type)
            default_value = None
            has_default = cdef.default is not None
            if has_default:
                default_value = evaluator.evaluate(cdef.default, empty_scope)
            column = Column(
                cdef.name,
                ctype,
                not_null=cdef.not_null or cdef.primary_key,
                default=default_value,
                has_default=has_default,
            )
            columns.append(column)
            if cdef.primary_key:
                primary_key.append(cdef.name)
            if cdef.unique:
                uniques.append((cdef.name,))
            if cdef.check is not None:
                checks.append(cdef.check)
                check_sources.append(expr_to_sql(cdef.check))
            if cdef.references is not None:
                ref_table, ref_column = cdef.references
                target = catalog.table(ref_table)
                if not ref_column:
                    if not target.primary_key:
                        raise ExecutionError(
                            f"referenced table {ref_table!r} has no primary key"
                        )
                    ref_column = target.primary_key[0]
                foreign_keys.append(
                    ForeignKey((cdef.name,), target.name, (ref_column,))
                )

        for fkdef in stmt.foreign_keys:
            target = catalog.table(fkdef.ref_table)
            ref_columns = tuple(fkdef.ref_columns) or tuple(target.primary_key)
            if not ref_columns:
                raise ExecutionError(
                    f"referenced table {fkdef.ref_table!r} has no primary key"
                )
            foreign_keys.append(
                ForeignKey(tuple(fkdef.columns), target.name, ref_columns)
            )

        schema = TableSchema(
            name=stmt.table,
            columns=columns,
            primary_key=tuple(primary_key),
            foreign_keys=foreign_keys,
            uniques=[tuple(u) for u in uniques],
            checks=checks,
            check_sources=check_sources,
        )
        for name in schema.primary_key:
            schema.column(name).not_null = True
            schema.column(name)  # validates existence
        for unique in schema.uniques:
            for name in unique:
                schema.column(name)

        catalog.add_table(schema)
        heap = HeapTable(schema.name)
        if schema.primary_key:
            heap.add_index(
                HashIndex(f"pk_{schema.name}", tuple(schema.primary_key), unique=True)
            )
        for index_number, unique in enumerate(schema.uniques):
            heap.add_index(
                HashIndex(f"uq_{schema.name}_{index_number}", unique, unique=True)
            )
        self.db.heaps[schema.name.lower()] = heap

        session.tx.log_undo(
            f"create table {schema.name}",
            lambda db=self.db, name=schema.name: db.drop_table_physical(name),
        )
        if session.tx.redo_enabled:
            session.tx.log_redo(
                {
                    "op": "create_table",
                    "table": schema.name.lower(),
                    "schema": dump_table_schema(schema),
                    "indexes": [
                        dump_index(ix) for ix in heap.indexes.values()
                    ],
                    "uid": heap.uid,
                    "version": heap.version,
                }
            )
        return ResultSet(status="CREATE TABLE")

    def _exec_DropTableStatement(
        self, stmt: ast.DropTableStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        for name in stmt.tables:
            session.lock_table(name, "X")
        for name in stmt.tables:
            if not catalog.has_object(name):
                if stmt.if_exists:
                    continue
                raise UnknownTableError(f"relation {name!r} does not exist")
            if catalog.has_view(name):
                view = catalog.remove_view(name)
                session.tx.log_undo(
                    f"drop view {name}",
                    lambda catalog=catalog, view=view: catalog.add_view(view),
                )
                if session.tx.redo_enabled:
                    session.tx.log_redo({"op": "drop_view", "view": view.name})
                continue
            referencing = [
                t
                for t in catalog.referencing_tables(name)
                if t.lower() != name.lower()
            ]
            if referencing and not stmt.cascade:
                raise ForeignKeyViolation(
                    f"cannot drop table {name!r}: referenced by "
                    f"{', '.join(referencing)} (use CASCADE)"
                )
            to_drop = [name] + (referencing if stmt.cascade else [])
            for table_name in to_drop:
                if not catalog.has_table(table_name):
                    continue
                schema = catalog.remove_table(table_name)
                heap = self.db.heaps.pop(table_name.lower())
                dropped_indexes = [
                    catalog.remove_index(ix.name)
                    for ix in catalog.indexes_on(table_name)
                ]
                session.tx.log_undo(
                    f"drop table {table_name}",
                    lambda db=self.db,
                    schema=schema,
                    heap=heap,
                    dropped=dropped_indexes: db.restore_table(schema, heap, dropped),
                )
                if session.tx.redo_enabled:
                    session.tx.log_redo(
                        {"op": "drop_table", "table": schema.name.lower()}
                    )
        return ResultSet(status="DROP TABLE")

    def _exec_AlterTableStatement(
        self, stmt: ast.AlterTableStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        session.lock_table(stmt.table, "X")
        schema = catalog.table(stmt.table)
        heap = self.db.heap(schema.name)
        if stmt.action == "ADD_COLUMN":
            cdef = stmt.column
            assert cdef is not None
            if schema.has_column(cdef.name):
                raise ExecutionError(
                    f"column {cdef.name!r} already exists in {schema.name!r}"
                )
            ctype = ColumnType.parse(cdef.declared_type)
            evaluator = self._evaluator(session)
            empty_scope = Scope({}, {}, frozenset(), None)
            default = (
                evaluator.evaluate(cdef.default, empty_scope)
                if cdef.default is not None
                else None
            )
            if cdef.not_null and default is None and len(heap):
                raise NotNullViolation(
                    f"cannot add NOT NULL column {cdef.name!r} without a default "
                    "to a non-empty table"
                )
            column = Column(
                cdef.name,
                ctype,
                not_null=cdef.not_null,
                default=default,
                has_default=cdef.default is not None,
            )
            schema.columns.append(column)
            heap.add_column(column.name, default)
            session.tx.log_undo(
                f"add column {schema.name}.{column.name}",
                lambda schema=schema, heap=heap, column=column: (
                    schema.columns.remove(column),
                    heap.drop_column(column.name),
                ),
            )
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {
                        "op": "add_column",
                        "table": schema.name.lower(),
                        "column": dump_column(column),
                        "fill": default,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            return ResultSet(status="ALTER TABLE")
        if stmt.action == "DROP_COLUMN":
            column = schema.column(stmt.old_name or "")
            if column.name in schema.primary_key:
                raise ExecutionError("cannot drop a primary key column")
            saved_values = {
                rid: row.get(column.name) for rid, row in heap.rows()
            }
            index = schema.columns.index(column)
            schema.columns.remove(column)
            heap.drop_column(column.name)

            def undo(schema=schema, heap=heap, column=column, index=index,
                     values=saved_values):
                schema.columns.insert(index, column)
                heap.restore_column(column.name, values)

            session.tx.log_undo(f"drop column {schema.name}.{column.name}", undo)
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {
                        "op": "drop_column",
                        "table": schema.name.lower(),
                        "column": column.name,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            return ResultSet(status="ALTER TABLE")
        if stmt.action == "RENAME_COLUMN":
            column = schema.column(stmt.old_name or "")
            if schema.has_column(stmt.new_name or ""):
                raise ExecutionError(f"column {stmt.new_name!r} already exists")
            old_name = column.name
            column.name = stmt.new_name or ""
            heap.rename_column(old_name, column.name)
            schema.primary_key = tuple(
                column.name if c == old_name else c for c in schema.primary_key
            )
            def undo_rename(schema=schema, heap=heap, column=column,
                            old=old_name):
                new = column.name
                heap.rename_column(new, old)
                column.name = old
                # the forward path rewrote the primary key too; leaving it
                # pointing at the new name would dangle (and, durably,
                # snapshot a PK on a nonexistent column)
                schema.primary_key = tuple(
                    old if c == new else c for c in schema.primary_key
                )

            session.tx.log_undo(
                f"rename column {schema.name}.{old_name}", undo_rename
            )
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {
                        "op": "rename_column",
                        "table": schema.name.lower(),
                        "old": old_name,
                        "new": column.name,
                        "uid": heap.uid,
                        "version": heap.version,
                    }
                )
            return ResultSet(status="ALTER TABLE")
        if stmt.action == "RENAME_TABLE":
            old_name = schema.name
            new_name = stmt.new_name or ""
            catalog.rename_table(old_name, new_name)
            self.db.heaps[new_name.lower()] = self.db.heaps.pop(old_name.lower())
            session.tx.log_undo(
                f"rename table {old_name}",
                lambda db=self.db, old=old_name, new=new_name: (
                    db.catalog.rename_table(new, old),
                    db.heaps.__setitem__(old.lower(), db.heaps.pop(new.lower())),
                ),
            )
            if session.tx.redo_enabled:
                session.tx.log_redo(
                    {"op": "rename_table", "old": old_name, "new": new_name}
                )
            return ResultSet(status="ALTER TABLE")
        raise ExecutionError(f"unsupported ALTER TABLE action {stmt.action}")

    def _exec_CreateIndexStatement(
        self, stmt: ast.CreateIndexStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        # lock before the IF NOT EXISTS probe: racing creators on the
        # same table serialize here, so the loser sees "(exists)" instead
        # of a duplicate-index error (and the schema is the post-lock
        # one). Creators on *different* tables hold non-conflicting
        # locks — their name race is settled by add_index's atomic
        # check-then-set, caught below.
        schema = self._locked_table(session, stmt.table, "X")
        if stmt.if_not_exists and stmt.name.lower() in catalog.indexes:
            return ResultSet(status="CREATE INDEX (exists)")
        for name in stmt.columns:
            schema.column(name)
        kind = "btree" if (stmt.using or "").upper() == "BTREE" else "hash"
        index_schema = IndexSchema(
            stmt.name, schema.name, tuple(stmt.columns), stmt.unique, kind=kind
        )
        try:
            catalog.add_index(index_schema)
        except DuplicateObjectError:
            if stmt.if_not_exists:
                # lost a cross-table name race after the probe: same
                # contract as losing the probe itself
                return ResultSet(status="CREATE INDEX (exists)")
            raise
        heap = self.db.heap(schema.name)
        index_cls = SortedIndex if kind == "btree" else HashIndex
        index = index_cls(stmt.name, tuple(stmt.columns), stmt.unique)
        try:
            heap.add_index(index)
        except Exception:
            catalog.remove_index(stmt.name)
            raise
        session.tx.log_undo(
            f"create index {stmt.name}",
            lambda catalog=catalog, heap=heap, name=stmt.name: (
                catalog.remove_index(name),
                heap.drop_index(name),
            ),
        )
        if session.tx.redo_enabled:
            session.tx.log_redo(
                {
                    "op": "create_index",
                    "table": schema.name.lower(),
                    "index": dump_index(index),
                    "uid": heap.uid,
                    "version": heap.version,
                }
            )
        return ResultSet(status="CREATE INDEX")

    def _exec_DropIndexStatement(
        self, stmt: ast.DropIndexStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        # existence (and the owning table) must hold *after* the lock
        # grant: a DROP that blocked behind a concurrent drop of the same
        # index would otherwise crash on remove; loop in case the index
        # was re-created on a different table while we waited
        while True:
            if stmt.name.lower() not in catalog.indexes:
                if stmt.if_exists:
                    return ResultSet(status="DROP INDEX (absent)")
                raise UnknownTableError(f"index {stmt.name!r} does not exist")
            table = catalog.index(stmt.name).table
            session.lock_table(table, "X")
            if (
                stmt.name.lower() in catalog.indexes
                and catalog.index(stmt.name).table == table
            ):
                break
        index_schema = catalog.remove_index(stmt.name)
        heap = self.db.heap(index_schema.table)
        index = heap.drop_index(index_schema.name)
        session.tx.log_undo(
            f"drop index {stmt.name}",
            lambda catalog=catalog, heap=heap, ix=index_schema, index=index: (
                catalog.add_index(ix),
                heap.attach_index(index),
            ),
        )
        if session.tx.redo_enabled:
            session.tx.log_redo(
                {
                    "op": "drop_index",
                    "table": index_schema.table.lower(),
                    "index": index_schema.name,
                    "uid": heap.uid,
                    "version": heap.version,
                }
            )
        return ResultSet(status="DROP INDEX")

    def _exec_AnalyzeStatement(
        self, stmt: ast.AnalyzeStatement, session: "Session"
    ) -> ResultSet:
        catalog = self.db.catalog
        if stmt.table is not None:
            # resolve through the lock so the scan sees a settled table
            names = [self._locked_table(session, stmt.table, "S").name]
        else:
            names = sorted(schema.name for schema in catalog.tables.values())
        analyzed = 0
        for name in names:
            try:
                schema = self._locked_table(session, name, "S")
            except UnknownTableError:
                if stmt.table is None:
                    continue  # dropped while a bare ANALYZE waited; skip
                raise
            heap = self.db.heap(schema.name)
            stats = build_table_statistics(schema, heap)
            key = schema.name.lower()
            previous = catalog.statistics.get(key)

            def undo(catalog=catalog, key=key, previous=previous):
                if previous is None:
                    catalog.statistics.pop(key, None)
                else:
                    catalog.statistics[key] = previous

            catalog.statistics[key] = stats
            session.tx.log_undo(f"analyze {schema.name}", undo)
            if session.tx.redo_enabled:
                # the *computed* payload travels in the WAL, so replay
                # restores the exact statistics without rescanning heaps
                session.tx.log_redo(
                    {"op": "analyze", "table": key, "stats": stats.to_payload()}
                )
            analyzed += 1
        return ResultSet(status=f"ANALYZE {analyzed}")

    def _exec_CreateViewStatement(
        self, stmt: ast.CreateViewStatement, session: "Session"
    ) -> ResultSet:
        session.lock_table(stmt.name, "X")
        # the rendered definition round-trips through the parser, which is
        # both the catalog's human-readable DDL and the WAL representation
        view = ViewSchema(
            stmt.name, stmt.select, source_sql=select_to_sql(stmt.select)
        )
        replaced = (
            self.db.catalog.views.get(stmt.name.lower()) if stmt.or_replace else None
        )
        self.db.catalog.add_view(view, replace=stmt.or_replace)

        def undo(catalog=self.db.catalog, name=stmt.name, replaced=replaced):
            catalog.remove_view(name)
            if replaced is not None:
                catalog.add_view(replaced)

        session.tx.log_undo(f"create view {stmt.name}", undo)
        if session.tx.redo_enabled:
            session.tx.log_redo(
                {
                    "op": "create_view",
                    "view": stmt.name,
                    "sql": view.source_sql,
                    "or_replace": stmt.or_replace,
                }
            )
        return ResultSet(status="CREATE VIEW")

    def _exec_DropViewStatement(
        self, stmt: ast.DropViewStatement, session: "Session"
    ) -> ResultSet:
        for name in stmt.names:
            session.lock_table(name, "X")
        for name in stmt.names:
            if not self.db.catalog.has_view(name):
                if stmt.if_exists:
                    continue
                raise UnknownTableError(f"view {name!r} does not exist")
            view = self.db.catalog.remove_view(name)
            session.tx.log_undo(
                f"drop view {name}",
                lambda catalog=self.db.catalog, view=view: catalog.add_view(view),
            )
            if session.tx.redo_enabled:
                session.tx.log_redo({"op": "drop_view", "view": view.name})
        return ResultSet(status="DROP VIEW")


class _Reversed:
    """Wrapper inverting comparison order, for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value
