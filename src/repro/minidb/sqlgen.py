"""Expression- and statement-to-SQL serialization.

Used to render catalog metadata (CHECK constraints, view definitions) back
into parseable SQL, so a schema rendered by minidb can be replayed into
another minidb instance (the PG-MCP-S sampled-database builder relies on
this round trip). The durable storage engine
(:mod:`repro.minidb.engines.durable`) leans on the same round trip: view
definitions are persisted as :func:`select_to_sql` text and re-parsed on
recovery, so the WAL never has to serialize an AST.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import MiniDBError


def expr_to_sql(expr: ast.Expr) -> str:
    """Serialize an expression AST back to SQL text."""
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {expr_to_sql(expr.operand)})"
        return f"({expr.op}{expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(expr_to_sql(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for when, then in expr.whens:
            parts.append(f"WHEN {expr_to_sql(when)} THEN {expr_to_sql(then)}")
        if expr.default is not None:
            parts.append(f"ELSE {expr_to_sql(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.InExpr):
        negated = "NOT " if expr.negated else ""
        if isinstance(expr.candidates, list):
            inner = ", ".join(expr_to_sql(c) for c in expr.candidates)
        else:
            inner = select_to_sql(expr.candidates)
        return f"({expr_to_sql(expr.operand)} {negated}IN ({inner}))"
    if isinstance(expr, ast.ExistsExpr):
        keyword = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"({keyword} ({select_to_sql(expr.subquery)}))"
    if isinstance(expr, ast.ScalarSubquery):
        return f"({select_to_sql(expr.subquery)})"
    if isinstance(expr, ast.BetweenExpr):
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}BETWEEN "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, ast.LikeExpr):
        keyword = "ILIKE" if expr.case_insensitive else "LIKE"
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}{keyword} "
            f"{expr_to_sql(expr.pattern)})"
        )
    if isinstance(expr, ast.IsNullExpr):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expr_to_sql(expr.operand)} {suffix})"
    if isinstance(expr, ast.CastExpr):
        return f"CAST({expr_to_sql(expr.operand)} AS {expr.target_type})"
    raise MiniDBError(f"cannot serialize {type(expr).__name__} to SQL")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _source_to_sql(source: "ast.TableRef | ast.SubqueryRef") -> str:
    if isinstance(source, ast.SubqueryRef):
        return f"({select_to_sql(source.subquery)}) AS {source.alias}"
    if source.alias:
        return f"{source.name} AS {source.alias}"
    return source.name


def select_to_sql(stmt: ast.SelectStatement) -> str:
    """Serialize a full SELECT statement back to parseable SQL.

    Round-trip contract: ``parse(select_to_sql(stmt))`` yields a statement
    that executes identically to ``stmt`` (expressions are re-parenthesized,
    so the AST shape may differ but evaluation order cannot). Trailing
    ORDER BY / LIMIT / OFFSET are rendered *after* any set operation,
    matching the parser, which attaches them to the outer statement.
    """
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    rendered_items = []
    for item in stmt.items:
        text = expr_to_sql(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        rendered_items.append(text)
    parts.append(", ".join(rendered_items))
    if stmt.from_sources:
        parts.append("FROM")
        parts.append(", ".join(_source_to_sql(s) for s in stmt.from_sources))
    for join in stmt.joins:
        if join.kind == "CROSS" or join.condition is None:
            parts.append(f"CROSS JOIN {_source_to_sql(join.source)}")
        else:
            parts.append(
                f"{join.kind} JOIN {_source_to_sql(join.source)} "
                f"ON {expr_to_sql(join.condition)}"
            )
    if stmt.where is not None:
        parts.append(f"WHERE {expr_to_sql(stmt.where)}")
    if stmt.group_by:
        parts.append(
            "GROUP BY " + ", ".join(expr_to_sql(g) for g in stmt.group_by)
        )
    if stmt.having is not None:
        parts.append(f"HAVING {expr_to_sql(stmt.having)}")
    if stmt.set_op is not None:
        kind, rhs = stmt.set_op
        parts.append(f"{kind} {select_to_sql(rhs)}")
    if stmt.order_by:
        rendered_orders = [
            expr_to_sql(o.expr) + (" DESC" if o.descending else "")
            for o in stmt.order_by
        ]
        parts.append("ORDER BY " + ", ".join(rendered_orders))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    if stmt.offset is not None:
        parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def create_index_to_sql(stmt: ast.CreateIndexStatement) -> str:
    """Serialize a CREATE INDEX statement back to parseable SQL.

    Round-trip contract mirrors :func:`select_to_sql`:
    ``parse(create_index_to_sql(stmt))`` reproduces the statement,
    including the ``USING BTREE`` / ``USING HASH`` access method.
    """
    parts = ["CREATE"]
    if stmt.unique:
        parts.append("UNIQUE")
    parts.append("INDEX")
    if stmt.if_not_exists:
        parts.append("IF NOT EXISTS")
    parts.append(stmt.name)
    parts.append(f"ON {stmt.table}")
    if stmt.using:
        parts.append(f"USING {stmt.using.upper()}")
    parts.append(f"({', '.join(stmt.columns)})")
    return " ".join(parts)


def analyze_to_sql(stmt: ast.AnalyzeStatement) -> str:
    """Serialize ANALYZE back to parseable SQL (same round-trip contract)."""
    if stmt.table is None:
        return "ANALYZE"
    return f"ANALYZE {stmt.table}"
