"""Expression-to-SQL serialization.

Used to render catalog metadata (CHECK constraints, view definitions) back
into parseable SQL, so a schema rendered by minidb can be replayed into
another minidb instance (the PG-MCP-S sampled-database builder relies on
this round trip).
"""

from __future__ import annotations

from . import ast_nodes as ast


def expr_to_sql(expr: ast.Expr) -> str:
    """Serialize an expression AST back to SQL text."""
    if isinstance(expr, ast.Literal):
        return _literal(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, ast.BinaryOp):
        return f"({expr_to_sql(expr.left)} {expr.op} {expr_to_sql(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return f"(NOT {expr_to_sql(expr.operand)})"
        return f"({expr.op}{expr_to_sql(expr.operand)})"
    if isinstance(expr, ast.FunctionCall):
        inner = ", ".join(expr_to_sql(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{inner})"
    if isinstance(expr, ast.CaseExpr):
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(expr_to_sql(expr.operand))
        for when, then in expr.whens:
            parts.append(f"WHEN {expr_to_sql(when)} THEN {expr_to_sql(then)}")
        if expr.default is not None:
            parts.append(f"ELSE {expr_to_sql(expr.default)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expr, ast.InExpr):
        negated = "NOT " if expr.negated else ""
        if isinstance(expr.candidates, list):
            inner = ", ".join(expr_to_sql(c) for c in expr.candidates)
        else:
            inner = "<subquery>"
        return f"({expr_to_sql(expr.operand)} {negated}IN ({inner}))"
    if isinstance(expr, ast.BetweenExpr):
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}BETWEEN "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, ast.LikeExpr):
        keyword = "ILIKE" if expr.case_insensitive else "LIKE"
        negated = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negated}{keyword} "
            f"{expr_to_sql(expr.pattern)})"
        )
    if isinstance(expr, ast.IsNullExpr):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"({expr_to_sql(expr.operand)} {suffix})"
    if isinstance(expr, ast.CastExpr):
        return f"CAST({expr_to_sql(expr.operand)} AS {expr.target_type})"
    raise ValueError(f"cannot serialize {type(expr).__name__} to SQL")


def _literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
