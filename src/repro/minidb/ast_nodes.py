"""AST node definitions for the minidb SQL dialect.

Every statement and expression form the parser can produce is a frozen-ish
dataclass here. Nodes are deliberately dumb data carriers; evaluation lives
in :mod:`repro.minidb.expressions` and :mod:`repro.minidb.executor`, and
static analysis (used by BridgeScope's object-level verification) lives in
:mod:`repro.core.sql_analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""


@dataclass
class Literal(Expr):
    value: Any  # int | float | str | bool | None


@dataclass
class ColumnRef(Expr):
    name: str
    table: str | None = None  # qualifier as written, e.g. "t1" in t1.x

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: str | None = None


@dataclass
class BinaryOp(Expr):
    op: str  # +,-,*,/,%,=,<>,<,<=,>,>=,AND,OR,||
    left: Expr
    right: Expr


@dataclass
class UnaryOp(Expr):
    op: str  # -, +, NOT
    operand: Expr


@dataclass
class FunctionCall(Expr):
    name: str  # upper-cased
    args: list[Expr]
    distinct: bool = False  # COUNT(DISTINCT x)


@dataclass
class CaseExpr(Expr):
    operand: Expr | None  # CASE x WHEN ... vs searched CASE
    whens: list[tuple[Expr, Expr]]
    default: Expr | None


@dataclass
class InExpr(Expr):
    operand: Expr
    candidates: "list[Expr] | SelectStatement"
    negated: bool = False


@dataclass
class BetweenExpr(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class LikeExpr(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False
    case_insensitive: bool = False  # ILIKE


@dataclass
class IsNullExpr(Expr):
    operand: Expr
    negated: bool = False  # IS NOT NULL


@dataclass
class ExistsExpr(Expr):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass
class ScalarSubquery(Expr):
    subquery: "SelectStatement"


@dataclass
class CastExpr(Expr):
    operand: Expr
    target_type: str


# --------------------------------------------------------------------------
# SELECT machinery
# --------------------------------------------------------------------------


@dataclass
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass
class TableRef:
    """A table or view in FROM, possibly aliased."""

    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    """A derived table: ``(SELECT ...) AS alias``."""

    subquery: "SelectStatement"
    alias: str


@dataclass
class Join:
    kind: str  # INNER | LEFT | RIGHT | CROSS
    source: "TableRef | SubqueryRef"
    condition: Expr | None  # None for CROSS


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class SelectStatement:
    items: list[SelectItem]
    from_sources: list["TableRef | SubqueryRef"] = field(default_factory=list)
    joins: list[Join] = field(default_factory=list)
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False
    set_op: Optional[tuple[str, "SelectStatement"]] = None  # ("UNION"|"UNION ALL"|..., rhs)


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------


@dataclass
class InsertStatement:
    table: str
    columns: list[str] | None  # None = declared order
    rows: list[list[Expr]] | None  # VALUES form
    select: SelectStatement | None = None  # INSERT ... SELECT form


@dataclass
class UpdateStatement:
    table: str
    assignments: list[tuple[str, Expr]]
    where: Expr | None = None


@dataclass
class DeleteStatement:
    table: str
    where: Expr | None = None


# --------------------------------------------------------------------------
# DDL
# --------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    declared_type: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Expr | None = None
    check: Expr | None = None
    references: tuple[str, str] | None = None  # (table, column)


@dataclass
class ForeignKeyDef:
    columns: list[str]
    ref_table: str
    ref_columns: list[str]


@dataclass
class CreateTableStatement:
    table: str
    columns: list[ColumnDef]
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[ForeignKeyDef] = field(default_factory=list)
    uniques: list[list[str]] = field(default_factory=list)
    checks: list[Expr] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class DropTableStatement:
    tables: list[str]
    if_exists: bool = False
    cascade: bool = False


@dataclass
class AlterTableStatement:
    table: str
    action: str  # ADD_COLUMN | DROP_COLUMN | RENAME_COLUMN | RENAME_TABLE
    column: ColumnDef | None = None
    old_name: str | None = None
    new_name: str | None = None


@dataclass
class CreateIndexStatement:
    name: str
    table: str
    columns: list[str]
    unique: bool = False
    if_not_exists: bool = False
    using: str | None = None  # "BTREE" | "HASH" | None (defaults to hash)


@dataclass
class DropIndexStatement:
    name: str
    if_exists: bool = False


@dataclass
class CreateViewStatement:
    name: str
    select: SelectStatement
    or_replace: bool = False


@dataclass
class DropViewStatement:
    names: list[str]
    if_exists: bool = False


# --------------------------------------------------------------------------
# transactions & privileges
# --------------------------------------------------------------------------


@dataclass
class ExplainStatement:
    select: SelectStatement
    #: EXPLAIN ANALYZE: execute the statement and annotate the plan lines
    #: with actual row counts and per-node timings
    analyze: bool = False


@dataclass
class AnalyzeStatement:
    """``ANALYZE [table]`` — collect planner statistics (None = all tables)."""

    table: str | None = None


@dataclass
class BeginStatement:
    pass


@dataclass
class CommitStatement:
    pass


@dataclass
class RollbackStatement:
    savepoint: str | None = None  # ROLLBACK TO SAVEPOINT x


@dataclass
class SavepointStatement:
    name: str


@dataclass
class ReleaseSavepointStatement:
    name: str


@dataclass
class GrantStatement:
    actions: list[str]  # SELECT/INSERT/... or ["ALL"]
    columns: list[str] | None  # column-level grant, None = whole object
    objects: list[str]
    grantee: str


@dataclass
class RevokeStatement:
    actions: list[str]
    columns: list[str] | None
    objects: list[str]
    grantee: str


Statement = (
    SelectStatement
    | InsertStatement
    | UpdateStatement
    | DeleteStatement
    | CreateTableStatement
    | DropTableStatement
    | AlterTableStatement
    | CreateIndexStatement
    | DropIndexStatement
    | CreateViewStatement
    | DropViewStatement
    | AnalyzeStatement
    | BeginStatement
    | CommitStatement
    | RollbackStatement
    | SavepointStatement
    | ReleaseSavepointStatement
    | GrantStatement
    | RevokeStatement
)
