"""Access-path planning: index-assisted scans for simple predicates.

minidb's executor defaults to sequential scans. For the common agent-issued
query shape ``SELECT ... FROM t WHERE col = literal [AND ...]`` this module
finds a hash index covering an equality-bound column set and probes it,
reducing the scan to the matching row ids. The residual WHERE predicate is
still evaluated afterwards, so planning is purely an optimization — never a
semantics change.

``EXPLAIN <select>`` surfaces the chosen access path per source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from . import ast_nodes as ast
from .storage import HashIndex, HeapTable


@dataclass
class EqualityBinding:
    """One ``column = constant`` conjunct usable for index probing."""

    column: str  # lower-cased
    value: Any


@dataclass
class AccessPath:
    """The chosen way to read one table."""

    table: str
    kind: str  # "seq" | "index"
    index_name: str | None = None
    key_columns: tuple[str, ...] = ()

    def describe(self) -> str:
        if self.kind == "index":
            keys = ", ".join(self.key_columns)
            return f"Index Scan using {self.index_name} on {self.table} (key: {keys})"
        return f"Seq Scan on {self.table}"


def extract_equality_bindings(
    where: ast.Expr | None, binding: str
) -> list[EqualityBinding]:
    """Top-level AND-ed ``col = literal`` conjuncts attributable to ``binding``.

    Only unqualified columns or columns qualified with this binding are
    considered; anything more complex is left to the residual filter.
    """
    if where is None:
        return []
    bindings: list[EqualityBinding] = []
    _walk_conjuncts(where, binding.lower(), bindings)
    return bindings


def _walk_conjuncts(expr: ast.Expr, binding: str, out: list[EqualityBinding]) -> None:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        _walk_conjuncts(expr.left, binding, out)
        _walk_conjuncts(expr.right, binding, out)
        return
    if isinstance(expr, ast.BinaryOp) and expr.op == "=":
        column, literal = _column_literal_pair(expr.left, expr.right, binding)
        if column is not None and literal is not None and literal.value is not None:
            out.append(EqualityBinding(column, literal.value))


def _column_literal_pair(
    left: ast.Expr, right: ast.Expr, binding: str
) -> tuple[str | None, ast.Literal | None]:
    for column_side, literal_side in ((left, right), (right, left)):
        if isinstance(column_side, ast.ColumnRef) and isinstance(
            literal_side, ast.Literal
        ):
            if column_side.table is None or column_side.table.lower() == binding:
                return column_side.name.lower(), literal_side
    return None, None


def choose_access_path(
    table: str,
    heap: HeapTable,
    bindings: list[EqualityBinding],
) -> tuple[AccessPath, HashIndex | None, tuple | None]:
    """Pick the best index whose columns are fully equality-bound."""
    by_column = {b.column: b.value for b in bindings}
    best: HashIndex | None = None
    for index in heap.indexes.values():
        columns = tuple(c.lower() for c in index.columns)
        if all(c in by_column for c in columns):
            # prefer unique indexes, then wider keys (more selective)
            if best is None:
                best = index
                continue
            best_cols = tuple(c.lower() for c in best.columns)
            if (index.unique, len(columns)) > (best.unique, len(best_cols)):
                best = index
    if best is None:
        return AccessPath(table, "seq"), None, None
    key = tuple(by_column[c.lower()] for c in best.columns)
    path = AccessPath(
        table,
        "index",
        index_name=best.name,
        key_columns=tuple(best.columns),
    )
    return path, best, key


def plan_select_paths(
    stmt: ast.SelectStatement,
    table_of_binding: dict[str, str],
    heap_of_table,
) -> list[AccessPath]:
    """Access paths for every base-table source of a SELECT (for EXPLAIN)."""
    paths: list[AccessPath] = []
    for binding, table in table_of_binding.items():
        heap = heap_of_table(table)
        bindings = extract_equality_bindings(stmt.where, binding)
        path, _, _ = choose_access_path(table, heap, bindings)
        paths.append(path)
    return paths
