"""Access-path and join planning for minidb.

minidb's executor defaults to sequential scans and nested-loop joins. This
module plans two kinds of optimizations, both pure scan/pair reductions that
never change statement semantics:

* **Access paths** — for the common agent-issued query shape
  ``SELECT ... FROM t WHERE col = literal [AND ...]`` the planner finds an
  index covering an equality-bound column set and probes it, reducing
  the scan to the matching row ids. Range conjuncts (``<, <=, >, >=``,
  ``BETWEEN``) over a ``USING BTREE`` sorted index — optionally behind an
  equality-bound column prefix — become *range* access paths that slice
  the index's sorted array instead of scanning the heap
  (:func:`extract_range_bindings`, :func:`choose_access_path`).
  Additionally, null-rejecting single-source conjuncts
  (``col <op> literal``) are pushed down into the scan of multi-source
  queries so join inputs shrink before pairing. The residual WHERE
  predicate is still evaluated afterwards, so every access path is a pure
  candidate-set reduction.

* **Join strategies** — :func:`plan_join` splits a join's ON condition (and,
  because the full WHERE clause is re-applied after all joins, any
  cross-source equality conjuncts of the WHERE clause) into hash-joinable
  equi-keys plus a residual predicate. Joins with at least one equi-key
  execute as hash joins; non-equi conditions fall back to nested loops;
  conditionless pairings remain cross products. Outer-join NULL extension is
  preserved: WHERE-derived keys are safe on nullable sides precisely because
  equality is null-rejecting and the WHERE clause filters the NULL-extended
  rows it would have rejected anyway.

``EXPLAIN <select>`` surfaces the chosen access path per source and the
chosen strategy per join (see :func:`plan_select_paths` and
:func:`plan_select_joins`).

**Error-surfacing contract.** Planning never changes *results*: a query
that evaluates without errors returns the same rows under every strategy.
Name-resolution errors (unknown or ambiguous columns) are likewise
strategy-independent — unqualified references are only used for keys,
filters, or index probes when provably unambiguous across the whole
statement. Data-dependent *evaluation* errors (e.g. comparing an ``INT``
column to a ``TEXT`` literal), however, follow standard SQL-optimizer
semantics: a predicate that planning proved unnecessary to evaluate (its
rows were already pruned by an index probe, range slice, pushed filter,
or join key — or never reached because an ordered scan's LIMIT early
exit stopped first) may never run, so such a query can return its rows —
or empty — where an unoptimized plan would raise. A range bound whose
type differs from the column's values is the sharpest instance: the
sorted index's total order places whole type classes outside the slice,
so ``v >= 'abc'`` over an INT column returns empty instead of raising
the per-row comparison error — exactly the rows the slice excluded are
the rows whose evaluation would have raised. The seed behaved the same
way on its index-probe path; the row-pruning optimizations here extend
that contract rather than break it. (The equivalence suites therefore
compare plans on type-consistent predicates, where results are
byte-identical.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from . import ast_nodes as ast
from .sqlgen import expr_to_sql
from .storage import HashIndex, HeapTable, SortedIndex, ordering_key_element

if TYPE_CHECKING:  # pragma: no cover
    from .statistics import TableStatistics

#: comparison operators that can never be true when an operand is NULL;
#: only these may be pushed below an outer join's nullable side
NULL_REJECTING_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass
class EqualityBinding:
    """One ``column = constant`` conjunct usable for index probing."""

    column: str  # lower-cased
    value: Any


@dataclass
class RangeBinding:
    """Combined range bounds on one column, harvested from WHERE conjuncts.

    Built from top-level AND-ed ``col < / <= / > / >= literal`` comparisons
    and non-negated ``col BETWEEN lo AND hi``; multiple conjuncts on the
    same column keep the tightest bound on each side. ``None`` means
    unbounded on that side.
    """

    column: str  # lower-cased
    low: Any = None
    high: Any = None
    incl_low: bool = True
    incl_high: bool = True

    @property
    def bounded_sides(self) -> int:
        return (self.low is not None) + (self.high is not None)

    def tighten_low(self, value: Any, inclusive: bool) -> None:
        if value is None:
            return
        if self.low is None:
            self.low, self.incl_low = value, inclusive
            return
        new, old = ordering_key_element(value), ordering_key_element(self.low)
        if new > old or (new == old and self.incl_low and not inclusive):
            self.low, self.incl_low = value, inclusive

    def tighten_high(self, value: Any, inclusive: bool) -> None:
        if value is None:
            return
        if self.high is None:
            self.high, self.incl_high = value, inclusive
            return
        new, old = ordering_key_element(value), ordering_key_element(self.high)
        if new < old or (new == old and self.incl_high and not inclusive):
            self.high, self.incl_high = value, inclusive

    def describe(self, column: str | None = None) -> str:
        name = column or self.column
        parts = []
        if self.low is not None:
            op = ">=" if self.incl_low else ">"
            parts.append(f"{name} {op} {expr_to_sql(ast.Literal(self.low))}")
        if self.high is not None:
            op = "<=" if self.incl_high else "<"
            parts.append(f"{name} {op} {expr_to_sql(ast.Literal(self.high))}")
        return " AND ".join(parts)


@dataclass
class UnionBinding:
    """A disjunctive candidate set over one column.

    Harvested from a top-level ``col IN (literal, ...)`` conjunct or an
    OR-chain whose every disjunct binds the *same* column (equalities,
    ordering comparisons, BETWEEN). ``points`` are deduplicated non-NULL
    equality values; ``ranges`` are the OR-ed range disjuncts. An index
    union scan probes each member and unions the rid sets — a pure
    candidate-set reduction, since the full WHERE is re-applied.
    """

    column: str  # lower-cased
    points: list = field(default_factory=list)
    ranges: list[RangeBinding] = field(default_factory=list)

    @property
    def members(self) -> int:
        return len(self.points) + len(self.ranges)

    def describe(self, column: str | None = None) -> str:
        name = column or self.column
        parts = []
        if self.points:
            rendered = ", ".join(
                expr_to_sql(ast.Literal(v)) for v in self.points
            )
            parts.append(f"{name} IN ({rendered})")
        for rng in self.ranges:
            text = rng.describe(name)
            parts.append(f"({text})" if " AND " in text else text)
        return " OR ".join(parts)


@dataclass
class AccessPath:
    """The chosen way to read one table."""

    table: str
    kind: str  # "seq" | "index" | "range" | "union"
    index_name: str | None = None
    key_columns: tuple[str, ...] = ()
    filter_sql: str | None = None  # pushed-down single-source predicate
    # range-path details (kind == "range"): equality-bound leading values,
    # then bounds on the next index column
    prefix_values: tuple = ()
    range_column: str | None = None
    range: "RangeBinding | None" = None
    union: "UnionBinding | None" = None  # kind == "union"
    #: cost-model output (only when table statistics informed the choice)
    estimated_rows: float | None = None
    #: the executor will run this scan on the column-batch (vectorized)
    #: pipeline; set by EXPLAIN's shape gate, purely an annotation
    batched: bool = False

    def describe(self) -> str:
        if self.kind == "index":
            keys = ", ".join(self.key_columns)
            base = f"Index Scan using {self.index_name} on {self.table} (key: {keys})"
        elif self.kind == "range":
            conditions = [
                f"{column} = {expr_to_sql(ast.Literal(value))}"
                for column, value in zip(self.key_columns, self.prefix_values)
            ]
            if self.range is not None:
                conditions.append(self.range.describe(self.range_column))
            base = (
                f"Index Range Scan using {self.index_name} on {self.table} "
                f"({' AND '.join(conditions)})"
            )
        elif self.kind == "union":
            base = (
                f"Index Union Scan using {self.index_name} on {self.table} "
                f"({self.union.describe() if self.union else ''})"
            )
        else:
            base = f"Seq Scan on {self.table}"
        if self.filter_sql:
            base += f" (filter: {self.filter_sql})"
        if self.estimated_rows is not None:
            base += f" (est. rows={self.estimated_rows:.0f})"
        if self.batched:
            base += " (batched)"
        return base


@dataclass
class JoinKey:
    """One hash-joinable equi conjunct: left binding.column = right column."""

    left_binding: str
    left_column: str
    right_column: str


@dataclass
class JoinPlan:
    """The chosen way to combine one new source into the joined relation."""

    kind: str  # INNER | LEFT | RIGHT | CROSS
    right_binding: str
    strategy: str = "nested-loop"  # "hash" | "nested-loop" | "cross"
    keys: list[JoinKey] = field(default_factory=list)
    residual: ast.Expr | None = None  # non-equi remainder of the ON condition
    condition: ast.Expr | None = None

    def describe(self) -> str:
        if self.strategy == "hash":
            keys = ", ".join(
                f"{k.left_binding}.{k.left_column} = "
                f"{self.right_binding}.{k.right_column}"
                for k in self.keys
            )
            return f"Hash Join ({self.kind}) on {self.right_binding} (keys: {keys})"
        if self.strategy == "nested-loop":
            cond = expr_to_sql(self.condition) if self.condition is not None else "true"
            return (
                f"Nested Loop Join ({self.kind}) on {self.right_binding} "
                f"(cond: {cond})"
            )
        return f"Cross Join on {self.right_binding}"


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """AND-fold a conjunct list back into a single predicate."""
    if not conjuncts:
        return None
    predicate = conjuncts[0]
    for conjunct in conjuncts[1:]:
        predicate = ast.BinaryOp("AND", predicate, conjunct)
    return predicate


def extract_equality_bindings(
    where: ast.Expr | None,
    binding: str,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> list[EqualityBinding]:
    """Top-level AND-ed ``col = literal`` conjuncts attributable to ``binding``.

    Only unqualified columns or columns qualified with this binding are
    considered; anything more complex is left to the residual filter. When
    ``statement_sources`` is given (multi-source queries), unqualified
    columns must be unambiguous across the whole SELECT — otherwise an
    empty index probe could return ``[]`` where the WHERE evaluator must
    raise the ambiguity error.
    """
    bindings: list[EqualityBinding] = []
    lowered = binding.lower()
    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            column_ref, literal = _column_literal_pair(
                conjunct.left, conjunct.right, lowered
            )
            if column_ref is None or literal is None or literal.value is None:
                continue
            if (
                column_ref.table is None
                and statement_sources is not None
                and not _unqualified_unambiguous(
                    column_ref.name.lower(), statement_sources
                )
            ):
                continue
            bindings.append(
                EqualityBinding(column_ref.name.lower(), literal.value)
            )
    return bindings


def _unqualified_unambiguous(
    name: str, statement_sources: list[tuple[str, list[str] | None]] | None
) -> bool:
    """Whether an unqualified ``name`` names exactly one statement column.

    ``statement_sources`` lists every source of the SELECT (not just those
    already folded into the join). With it absent, or with any source's
    columns unknown (views, derived tables), unqualified names are treated
    as unusable: resolving them against a partial view could mask the
    ambiguity error the evaluator would raise.
    """
    if statement_sources is None:
        return False
    count = 0
    for _, columns in statement_sources:
        if columns is None:
            return False
        count += sum(1 for c in columns if c.lower() == name)
    return count == 1


#: comparison op -> (is_lower_bound, inclusive) with the column on the left
_RANGE_OPS = {
    ">": (True, False),
    ">=": (True, True),
    "<": (False, False),
    "<=": (False, True),
}


def extract_range_bindings(
    where: ast.Expr | None,
    binding: str,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> dict[str, RangeBinding]:
    """Top-level AND-ed range conjuncts attributable to ``binding``.

    Harvests ``col <op> literal`` (either operand order) for the four
    ordering comparisons, plus non-negated ``col BETWEEN lo AND hi``; NULL
    literals never bind (the comparison is three-valued false anyway).
    Name-resolution rules match :func:`extract_equality_bindings`:
    unqualified columns only bind when provably unambiguous across the
    whole statement. The harvested bounds only ever *narrow* a scan — the
    executor re-applies the full predicate to the candidate rows, so a
    range probe that over-approximates (e.g. across type ranks) stays
    correct.
    """
    lowered = binding.lower()
    ranges: dict[str, RangeBinding] = {}

    def usable(column_ref: ast.ColumnRef) -> bool:
        if column_ref.table is not None:
            return column_ref.table.lower() == lowered
        return statement_sources is None or _unqualified_unambiguous(
            column_ref.name.lower(), statement_sources
        )

    def bind(column: str) -> RangeBinding:
        return ranges.setdefault(column, RangeBinding(column))

    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op in _RANGE_OPS:
            for column_side, literal_side, flip in (
                (conjunct.left, conjunct.right, False),
                (conjunct.right, conjunct.left, True),
            ):
                if (
                    isinstance(column_side, ast.ColumnRef)
                    and isinstance(literal_side, ast.Literal)
                    and literal_side.value is not None
                    and usable(column_side)
                ):
                    is_low, inclusive = _RANGE_OPS[conjunct.op]
                    if flip:  # literal <op> column reads backwards
                        is_low = not is_low
                    entry = bind(column_side.name.lower())
                    if is_low:
                        entry.tighten_low(literal_side.value, inclusive)
                    else:
                        entry.tighten_high(literal_side.value, inclusive)
                    break
        elif (
            isinstance(conjunct, ast.BetweenExpr)
            and not conjunct.negated
            and isinstance(conjunct.operand, ast.ColumnRef)
            and isinstance(conjunct.low, ast.Literal)
            and isinstance(conjunct.high, ast.Literal)
            and conjunct.low.value is not None
            and conjunct.high.value is not None
            and usable(conjunct.operand)
        ):
            entry = bind(conjunct.operand.name.lower())
            entry.tighten_low(conjunct.low.value, True)
            entry.tighten_high(conjunct.high.value, True)
    return ranges


def split_disjuncts(expr: ast.Expr) -> list[ast.Expr]:
    """Flatten a predicate into its top-level OR-ed disjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "OR":
        return split_disjuncts(expr.left) + split_disjuncts(expr.right)
    return [expr]


def extract_union_bindings(
    where: ast.Expr | None,
    binding: str,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> dict[str, UnionBinding]:
    """Top-level disjunctive conjuncts servable as index unions.

    Two shapes qualify, both over a single column of ``binding``:

    * ``col IN (v1, v2, ...)`` with every member a literal (non-negated;
      subquery candidates are left to the evaluator). NULL members match
      nothing under three-valued IN and are dropped; duplicates (by index
      ordering key, so ``1`` and ``1.0`` coincide) are deduplicated.
    * An OR-chain whose every disjunct is ``col = literal``, a range
      comparison, or non-negated BETWEEN on the same column. One failing
      disjunct disqualifies the whole chain — a union scan must cover
      *every* way the disjunction can be true, or it would drop rows.

    Name-resolution rules match :func:`extract_equality_bindings`. When
    several conjuncts bind the same column, the one with the fewest
    members wins (conjuncts intersect; either set alone is a superset of
    the answer, and the full WHERE is re-applied regardless).
    """
    lowered = binding.lower()
    unions: dict[str, UnionBinding] = {}

    def usable(column_ref: ast.ColumnRef) -> bool:
        if column_ref.table is not None:
            return column_ref.table.lower() == lowered
        return statement_sources is None or _unqualified_unambiguous(
            column_ref.name.lower(), statement_sources
        )

    def from_in(conjunct: ast.InExpr) -> UnionBinding | None:
        if conjunct.negated or not isinstance(conjunct.candidates, list):
            return None
        operand = conjunct.operand
        if not (isinstance(operand, ast.ColumnRef) and usable(operand)):
            return None
        if not all(isinstance(c, ast.Literal) for c in conjunct.candidates):
            return None
        entry = UnionBinding(operand.name.lower())
        seen: set = set()
        for candidate in conjunct.candidates:
            if candidate.value is None:
                continue  # NULL member: three-valued IN matches nothing
            key = ordering_key_element(candidate.value)
            if key not in seen:
                seen.add(key)
                entry.points.append(candidate.value)
        return entry

    def from_or(conjunct: ast.Expr) -> UnionBinding | None:
        disjuncts = split_disjuncts(conjunct)
        if len(disjuncts) < 2:
            return None
        entry: UnionBinding | None = None
        seen: set = set()
        for disjunct in disjuncts:
            column: str | None = None
            if isinstance(disjunct, ast.BinaryOp) and disjunct.op in (
                ("=",) + tuple(_RANGE_OPS)
            ):
                for column_side, literal_side, flip in (
                    (disjunct.left, disjunct.right, False),
                    (disjunct.right, disjunct.left, True),
                ):
                    if (
                        isinstance(column_side, ast.ColumnRef)
                        and isinstance(literal_side, ast.Literal)
                        and literal_side.value is not None
                        and usable(column_side)
                    ):
                        column = column_side.name.lower()
                        value = literal_side.value
                        if disjunct.op == "=":
                            member: "RangeBinding | None" = None
                        else:
                            is_low, inclusive = _RANGE_OPS[disjunct.op]
                            if flip:
                                is_low = not is_low
                            member = RangeBinding(column)
                            if is_low:
                                member.tighten_low(value, inclusive)
                            else:
                                member.tighten_high(value, inclusive)
                        break
                else:
                    return None
            elif (
                isinstance(disjunct, ast.BetweenExpr)
                and not disjunct.negated
                and isinstance(disjunct.operand, ast.ColumnRef)
                and isinstance(disjunct.low, ast.Literal)
                and isinstance(disjunct.high, ast.Literal)
                and disjunct.low.value is not None
                and disjunct.high.value is not None
                and usable(disjunct.operand)
            ):
                column = disjunct.operand.name.lower()
                member = RangeBinding(column)
                member.tighten_low(disjunct.low.value, True)
                member.tighten_high(disjunct.high.value, True)
            elif isinstance(disjunct, ast.InExpr):
                in_entry = from_in(disjunct)
                if in_entry is None:
                    return None
                column = in_entry.column
                member = None
                value = None  # points merged below
            else:
                return None
            if entry is None:
                entry = UnionBinding(column)
            elif entry.column != column:
                return None  # disjunction spans columns: not one index
            if isinstance(disjunct, ast.InExpr):
                for point in in_entry.points:
                    key = ordering_key_element(point)
                    if key not in seen:
                        seen.add(key)
                        entry.points.append(point)
            elif member is None:
                key = ordering_key_element(value)
                if key not in seen:
                    seen.add(key)
                    entry.points.append(value)
            else:
                entry.ranges.append(member)
        return entry

    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, ast.InExpr):
            entry = from_in(conjunct)
        elif isinstance(conjunct, ast.BinaryOp) and conjunct.op == "OR":
            entry = from_or(conjunct)
        else:
            continue
        if entry is None:
            continue
        existing = unions.get(entry.column)
        # conjuncts intersect: the smaller candidate set is the better scan
        if existing is None or entry.members < existing.members:
            unions[entry.column] = entry
    return unions


def extract_pushdown_filter(
    where: ast.Expr | None,
    binding: str,
    columns: list[str],
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> ast.Expr | None:
    """The AND of WHERE conjuncts safe to evaluate during this source's scan.

    A conjunct qualifies when it compares one of this source's columns to a
    non-NULL literal with a null-rejecting operator. Because the full WHERE
    clause is re-applied after joins, pre-filtering only removes rows whose
    joined results the WHERE clause would reject — including rows an outer
    join would otherwise NULL-extend, which the null-rejecting conjunct then
    rejects too. Unqualified column references are only used when
    ``statement_sources`` proves them unambiguous across the whole SELECT.
    """
    if where is None:
        return None
    own_columns = {c.lower() for c in columns}
    lowered = binding.lower()
    kept: list[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op in NULL_REJECTING_COMPARISONS
        ):
            continue
        for column_side, literal_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(column_side, ast.ColumnRef)
                and isinstance(literal_side, ast.Literal)
                and literal_side.value is not None
                and column_side.name.lower() in own_columns
                and (
                    column_side.table.lower() == lowered
                    if column_side.table is not None
                    else _unqualified_unambiguous(
                        column_side.name.lower(), statement_sources
                    )
                )
            ):
                kept.append(conjunct)
                break
    return conjoin(kept)


def _column_literal_pair(
    left: ast.Expr, right: ast.Expr, binding: str
) -> tuple[ast.ColumnRef | None, ast.Literal | None]:
    for column_side, literal_side in ((left, right), (right, left)):
        if isinstance(column_side, ast.ColumnRef) and isinstance(
            literal_side, ast.Literal
        ):
            if column_side.table is None or column_side.table.lower() == binding:
                return column_side, literal_side
    return None, None


# --------------------------------------------------------------------------
# join planning
# --------------------------------------------------------------------------

# column maps are binding name -> {lowered column -> stored column}; a None
# map means the columns are unknown (EXPLAIN over views/derived tables),
# where only qualified refs resolve


def _colmap(columns: list[str] | None) -> dict[str, str | None] | None:
    """lower name -> stored name; duplicates within the source map to None.

    Derived tables can expose the same output name twice (``SELECT x AS w,
    y AS w``); such names must stay unresolvable so they fall to the
    evaluator, which raises the ambiguity error.
    """
    if columns is None:
        return None
    mapping: dict[str, str | None] = {}
    for column in columns:
        key = column.lower()
        mapping[key] = None if key in mapping else column
    return mapping


def _resolve_ref(
    ref: ast.ColumnRef, sources: list[tuple[str, dict[str, str | None] | None]]
) -> tuple[str, str] | None:
    """Resolve a column reference to ``(binding, stored column name)``."""
    name = ref.name.lower()
    if ref.table is not None:
        qualifier = ref.table.lower()
        for binding, columns in sources:
            if binding.lower() == qualifier:
                if columns is None:
                    return binding, ref.name
                actual = columns.get(name)
                return (binding, actual) if actual is not None else None
        return None
    hits: list[tuple[str, str]] = []
    for binding, columns in sources:
        if columns is None:
            return None  # unknown columns: unqualified names are uncertain
        if name in columns:
            actual = columns[name]
            if actual is None:
                return None  # duplicated within the source: ambiguous
            hits.append((binding, actual))
    return hits[0] if len(hits) == 1 else None


def _equi_key(
    conjunct: ast.Expr,
    lefts: list[tuple[str, dict[str, str] | None]],
    right: tuple[str, dict[str, str] | None],
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> JoinKey | None:
    """A hash key if ``conjunct`` equates one left column with one right.

    ON conjuncts resolve against the join's own scope (``lefts`` + right),
    exactly like the nested-loop evaluator would. WHERE conjuncts are
    name-resolved against the *whole* statement, so callers pass
    ``statement_sources``: an unqualified name that is ambiguous with a
    source not yet folded in must not become a key — the final WHERE
    filter raises for it, and hashing on it could empty the relation
    before that error surfaces.
    """
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    if statement_sources is not None:
        for ref in (conjunct.left, conjunct.right):
            if ref.table is None and not _unqualified_unambiguous(
                ref.name.lower(), statement_sources
            ):
                return None
    for left_ref, right_ref in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        left_hit = _resolve_ref(left_ref, lefts)
        right_hit = _resolve_ref(right_ref, [right])
        if left_hit is None or right_hit is None:
            continue
        # reject refs resolvable on both sides (ambiguous; leave to the
        # evaluator, which raises the proper error)
        if _resolve_ref(left_ref, [right]) is not None:
            continue
        if _resolve_ref(right_ref, lefts) is not None:
            continue
        return JoinKey(left_hit[0], left_hit[1], right_hit[1])
    return None


def plan_join(
    kind: str,
    condition: ast.Expr | None,
    where: ast.Expr | None,
    left_sources: list[tuple[str, list[str] | None]],
    right_binding: str,
    right_columns: list[str] | None,
    allow_hash: bool = True,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> JoinPlan:
    """Choose a strategy for joining ``right_binding`` onto ``left_sources``.

    Equi-keys come from the ON condition and from cross-source equality
    conjuncts of the WHERE clause (always re-checked by the final WHERE
    filter, so harvesting them is safe for outer joins too). ON conjuncts
    that are not equi-keys become the residual predicate, evaluated per
    matched pair. ``statement_sources`` (all of the SELECT's sources) guards
    WHERE-conjunct name resolution; when omitted, WHERE keys only use
    qualified references.
    """
    lefts = [(binding, _colmap(columns)) for binding, columns in left_sources]
    right = (right_binding, _colmap(right_columns))
    keys: list[JoinKey] = []
    residual: list[ast.Expr] = []
    for conjunct in split_conjuncts(condition):
        key = _equi_key(conjunct, lefts, right)
        if key is not None:
            keys.append(key)
        else:
            residual.append(conjunct)
    where_scope = statement_sources if statement_sources is not None else []
    for conjunct in split_conjuncts(where):
        key = _equi_key(conjunct, lefts, right, where_scope)
        if key is not None and key not in keys:
            keys.append(key)
    plan = JoinPlan(kind=kind, right_binding=right_binding, condition=condition)
    if keys and allow_hash:
        plan.strategy = "hash"
        plan.keys = keys
        plan.residual = conjoin(residual)
    elif condition is None:
        plan.strategy = "cross"
    else:
        plan.strategy = "nested-loop"
    return plan


# --------------------------------------------------------------------------
# whole-SELECT planning (EXPLAIN)
# --------------------------------------------------------------------------


def choose_access_path(
    table: str,
    heap: HeapTable,
    bindings: list[EqualityBinding],
    ranges: dict[str, RangeBinding] | None = None,
    allow_index: bool = True,
    unions: dict[str, UnionBinding] | None = None,
    stats: "TableStatistics | None" = None,
) -> "tuple[AccessPath, HashIndex | SortedIndex | None, tuple | None]":
    """Pick the best access path for one table.

    Without statistics, candidates rank in a static preference order:

    1. an index whose columns are *fully* equality-bound — prefer unique,
       then wider keys, then hash over btree (O(1) probe);
    2. a sorted index with an equality-bound column prefix followed by a
       range-bound column — prefer the longest equality prefix, then
       bounds on both sides over one;
    3. an index union over a disjunctively-bound column (IN-list /
       OR-chain) — a single-column hash index serves point-only unions,
       a btree whose *first* column is the bound one serves points and
       ranges;
    4. the sequential scan.

    With table statistics (``ANALYZE``, matching the live heap's ``uid``),
    every candidate instead gets an estimated row count — equality
    selectivity from NDV/histogram-boundary multiplicity, range
    selectivity from equi-depth histogram positions — and the cheapest
    estimate wins, falling back to the static order only to break ties.
    A column without statistics contributes no reduction (factor 1.0), so
    missing information never makes a path look artificially cheap.

    Returns ``(path, index, key)``; ``key`` is the probe key for equality
    paths and ``None`` otherwise (range/union details live on the path).
    """
    if not allow_index:
        return AccessPath(table, "seq"), None, None
    if stats is not None and stats.uid != heap.uid:
        stats = None  # table was dropped/recreated since ANALYZE: ignore
    by_column = {b.column: b.value for b in bindings}
    # (static_order, rank, kind, index, extra); lower order preferred,
    # higher rank preferred within an order class
    candidates: list[tuple] = []
    for index in heap.indexes.values():
        columns = tuple(c.lower() for c in index.columns)
        if columns and all(c in by_column for c in columns):
            rank = (index.unique, len(columns), index.kind == "hash")
            candidates.append((0, rank, "index", index, None))
    if ranges:
        for index in heap.indexes.values():
            if index.kind != "btree":
                continue
            columns = tuple(c.lower() for c in index.columns)
            prefix_len = 0
            while prefix_len < len(columns) and columns[prefix_len] in by_column:
                prefix_len += 1
            if prefix_len >= len(columns):
                continue  # fully bound is an equality candidate above
            entry = ranges.get(columns[prefix_len])
            if entry is None:
                continue
            rank = (prefix_len, entry.bounded_sides)
            candidates.append((1, rank, "range", index, (prefix_len, entry)))
    if unions:
        for index in heap.indexes.values():
            columns = tuple(c.lower() for c in index.columns)
            entry = unions.get(columns[0]) if columns else None
            if entry is None:
                continue
            # zero-member unions (e.g. ``x IN (NULL)``) stay eligible:
            # zero candidate rows is the correct (empty) answer
            if index.kind == "hash":
                if len(columns) != 1 or entry.ranges:
                    continue  # hash can only probe full-key points
                rank = (index.unique, True)
            else:
                rank = (index.unique, False)
            candidates.append((2, rank, "union", index, entry))
    candidates.append((3, (), "seq", None, None))
    candidates.sort(key=lambda c: (c[0], _negated_rank(c[1])))
    chosen = candidates[0]
    chosen_estimate: float | None = None
    if stats is not None:
        chosen_estimate = _estimate_rows(chosen, stats, by_column)
        for candidate in candidates[1:]:
            estimate = _estimate_rows(candidate, stats, by_column)
            if estimate < chosen_estimate:  # ties keep the static order
                chosen, chosen_estimate = candidate, estimate
    _, _, kind, index, extra = chosen
    if kind == "index":
        key = tuple(by_column[c.lower()] for c in index.columns)
        path = AccessPath(
            table,
            "index",
            index_name=index.name,
            key_columns=tuple(index.columns),
            estimated_rows=chosen_estimate,
        )
        return path, index, key
    if kind == "range":
        prefix_len, entry = extra
        path = AccessPath(
            table,
            "range",
            index_name=index.name,
            key_columns=tuple(index.columns[:prefix_len]),
            prefix_values=tuple(
                by_column[c.lower()] for c in index.columns[:prefix_len]
            ),
            range_column=index.columns[prefix_len],
            range=entry,
            estimated_rows=chosen_estimate,
        )
        return path, index, None
    if kind == "union":
        path = AccessPath(
            table,
            "union",
            index_name=index.name,
            key_columns=(index.columns[0],),
            union=extra,
            estimated_rows=chosen_estimate,
        )
        return path, index, None
    return AccessPath(table, "seq", estimated_rows=chosen_estimate), None, None


def _negated_rank(rank: tuple) -> tuple:
    """Sort key inverting a preference rank (higher rank sorts first)."""
    return tuple(-int(part) for part in rank)


def _estimate_rows(
    candidate: tuple, stats: "TableStatistics", by_column: dict[str, Any]
) -> float:
    """Cost-model row estimate for one access-path candidate."""
    _, _, kind, index, extra = candidate
    row_count = float(stats.row_count)
    if kind == "seq":
        return row_count
    if kind == "index":
        fraction = 1.0
        for column in index.columns:
            column_stats = stats.column(column)
            if column_stats is not None:
                fraction *= column_stats.eq_fraction(by_column[column.lower()])
        estimate = row_count * fraction
        return min(estimate, 1.0) if index.unique else estimate
    if kind == "range":
        prefix_len, entry = extra
        fraction = 1.0
        for column in index.columns[:prefix_len]:
            column_stats = stats.column(column)
            if column_stats is not None:
                fraction *= column_stats.eq_fraction(by_column[column.lower()])
        column_stats = stats.column(index.columns[prefix_len])
        if column_stats is not None:
            fraction *= column_stats.range_fraction(
                entry.low, entry.high, entry.incl_low, entry.incl_high
            )
        return row_count * fraction
    # union: sum of member estimates, capped at the table (members overlap)
    entry = extra
    column_stats = stats.column(entry.column)
    if column_stats is None:
        return row_count
    fraction = sum(column_stats.eq_fraction(v) for v in entry.points)
    fraction += sum(
        column_stats.range_fraction(r.low, r.high, r.incl_low, r.incl_high)
        for r in entry.ranges
    )
    return min(row_count * fraction, row_count)


def _binding_of(source: "ast.TableRef | ast.SubqueryRef") -> str:
    return source.binding if isinstance(source, ast.TableRef) else source.alias


def plan_select_paths(
    stmt: ast.SelectStatement,
    table_of_binding: dict[str, str],
    heap_of_table,
    columns_of_binding: dict[str, list[str] | None] | None = None,
    allow_index: bool = True,
    stats_of_table=None,
) -> list[AccessPath]:
    """Access paths for every base-table source of a SELECT (for EXPLAIN).

    ``stats_of_table`` (optional callable ``table -> TableStatistics |
    None``) switches path choice to the cost model and stamps estimated
    row counts onto the returned paths.
    """
    paths: list[AccessPath] = []
    multi_source = (len(stmt.from_sources) + len(stmt.joins)) > 1
    statement_sources = (
        list(columns_of_binding.items())
        if multi_source and columns_of_binding
        else None
    )
    for binding, table in table_of_binding.items():
        heap = heap_of_table(table)
        bindings = extract_equality_bindings(stmt.where, binding, statement_sources)
        ranges = extract_range_bindings(stmt.where, binding, statement_sources)
        unions = extract_union_bindings(stmt.where, binding, statement_sources)
        path, _, _ = choose_access_path(
            table,
            heap,
            bindings,
            ranges,
            allow_index=allow_index,
            unions=unions,
            stats=stats_of_table(table) if stats_of_table is not None else None,
        )
        if multi_source and columns_of_binding:
            columns = columns_of_binding.get(binding)
            if columns:
                predicate = extract_pushdown_filter(
                    stmt.where, binding, columns, list(columns_of_binding.items())
                )
                if predicate is not None:
                    path.filter_sql = expr_to_sql(predicate)
        paths.append(path)
    return paths


def plan_select_joins(
    stmt: ast.SelectStatement,
    columns_of_binding: dict[str, list[str] | None],
    allow_hash: bool = True,
) -> list[JoinPlan]:
    """Join plans for a SELECT's implicit FROM folds and explicit joins."""
    plans: list[JoinPlan] = []
    statement_sources = list(columns_of_binding.items())
    lefts: list[tuple[str, list[str] | None]] = []
    for source in stmt.from_sources:
        binding = _binding_of(source)
        if lefts:
            plans.append(
                plan_join(
                    "INNER",
                    None,
                    stmt.where,
                    lefts,
                    binding,
                    columns_of_binding.get(binding),
                    allow_hash,
                    statement_sources,
                )
            )
        lefts.append((binding, columns_of_binding.get(binding)))
    for join in stmt.joins:
        binding = _binding_of(join.source)
        plans.append(
            plan_join(
                join.kind,
                join.condition,
                stmt.where,
                lefts,
                binding,
                columns_of_binding.get(binding),
                allow_hash,
                statement_sources,
            )
        )
        lefts.append((binding, columns_of_binding.get(binding)))
    return plans
