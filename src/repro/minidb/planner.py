"""Access-path and join planning for minidb.

minidb's executor defaults to sequential scans and nested-loop joins. This
module plans two kinds of optimizations, both pure scan/pair reductions that
never change statement semantics:

* **Access paths** — for the common agent-issued query shape
  ``SELECT ... FROM t WHERE col = literal [AND ...]`` the planner finds a
  hash index covering an equality-bound column set and probes it, reducing
  the scan to the matching row ids. Additionally, null-rejecting
  single-source conjuncts (``col <op> literal``) are pushed down into the
  scan of multi-source queries so join inputs shrink before pairing. The
  residual WHERE predicate is still evaluated afterwards.

* **Join strategies** — :func:`plan_join` splits a join's ON condition (and,
  because the full WHERE clause is re-applied after all joins, any
  cross-source equality conjuncts of the WHERE clause) into hash-joinable
  equi-keys plus a residual predicate. Joins with at least one equi-key
  execute as hash joins; non-equi conditions fall back to nested loops;
  conditionless pairings remain cross products. Outer-join NULL extension is
  preserved: WHERE-derived keys are safe on nullable sides precisely because
  equality is null-rejecting and the WHERE clause filters the NULL-extended
  rows it would have rejected anyway.

``EXPLAIN <select>`` surfaces the chosen access path per source and the
chosen strategy per join (see :func:`plan_select_paths` and
:func:`plan_select_joins`).

**Error-surfacing contract.** Planning never changes *results*: a query
that evaluates without errors returns the same rows under every strategy.
Name-resolution errors (unknown or ambiguous columns) are likewise
strategy-independent — unqualified references are only used for keys,
filters, or index probes when provably unambiguous across the whole
statement. Data-dependent *evaluation* errors (e.g. comparing an ``INT``
column to a ``TEXT`` literal), however, follow standard SQL-optimizer
semantics: a predicate that planning proved unnecessary to evaluate (its
rows were already pruned by an index probe, pushed filter, or join key)
may never run, so such a query can return its rows — or empty — where an
unoptimized plan would raise. The seed behaved the same way on its
index-probe path; the row-pruning optimizations here extend that contract
rather than break it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from . import ast_nodes as ast
from .sqlgen import expr_to_sql
from .storage import HashIndex, HeapTable

#: comparison operators that can never be true when an operand is NULL;
#: only these may be pushed below an outer join's nullable side
NULL_REJECTING_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass
class EqualityBinding:
    """One ``column = constant`` conjunct usable for index probing."""

    column: str  # lower-cased
    value: Any


@dataclass
class AccessPath:
    """The chosen way to read one table."""

    table: str
    kind: str  # "seq" | "index"
    index_name: str | None = None
    key_columns: tuple[str, ...] = ()
    filter_sql: str | None = None  # pushed-down single-source predicate

    def describe(self) -> str:
        if self.kind == "index":
            keys = ", ".join(self.key_columns)
            base = f"Index Scan using {self.index_name} on {self.table} (key: {keys})"
        else:
            base = f"Seq Scan on {self.table}"
        if self.filter_sql:
            base += f" (filter: {self.filter_sql})"
        return base


@dataclass
class JoinKey:
    """One hash-joinable equi conjunct: left binding.column = right column."""

    left_binding: str
    left_column: str
    right_column: str


@dataclass
class JoinPlan:
    """The chosen way to combine one new source into the joined relation."""

    kind: str  # INNER | LEFT | RIGHT | CROSS
    right_binding: str
    strategy: str = "nested-loop"  # "hash" | "nested-loop" | "cross"
    keys: list[JoinKey] = field(default_factory=list)
    residual: ast.Expr | None = None  # non-equi remainder of the ON condition
    condition: ast.Expr | None = None

    def describe(self) -> str:
        if self.strategy == "hash":
            keys = ", ".join(
                f"{k.left_binding}.{k.left_column} = "
                f"{self.right_binding}.{k.right_column}"
                for k in self.keys
            )
            return f"Hash Join ({self.kind}) on {self.right_binding} (keys: {keys})"
        if self.strategy == "nested-loop":
            cond = expr_to_sql(self.condition) if self.condition is not None else "true"
            return (
                f"Nested Loop Join ({self.kind}) on {self.right_binding} "
                f"(cond: {cond})"
            )
        return f"Cross Join on {self.right_binding}"


def split_conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expr]) -> ast.Expr | None:
    """AND-fold a conjunct list back into a single predicate."""
    if not conjuncts:
        return None
    predicate = conjuncts[0]
    for conjunct in conjuncts[1:]:
        predicate = ast.BinaryOp("AND", predicate, conjunct)
    return predicate


def extract_equality_bindings(
    where: ast.Expr | None,
    binding: str,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> list[EqualityBinding]:
    """Top-level AND-ed ``col = literal`` conjuncts attributable to ``binding``.

    Only unqualified columns or columns qualified with this binding are
    considered; anything more complex is left to the residual filter. When
    ``statement_sources`` is given (multi-source queries), unqualified
    columns must be unambiguous across the whole SELECT — otherwise an
    empty index probe could return ``[]`` where the WHERE evaluator must
    raise the ambiguity error.
    """
    bindings: list[EqualityBinding] = []
    lowered = binding.lower()
    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            column_ref, literal = _column_literal_pair(
                conjunct.left, conjunct.right, lowered
            )
            if column_ref is None or literal is None or literal.value is None:
                continue
            if (
                column_ref.table is None
                and statement_sources is not None
                and not _unqualified_unambiguous(
                    column_ref.name.lower(), statement_sources
                )
            ):
                continue
            bindings.append(
                EqualityBinding(column_ref.name.lower(), literal.value)
            )
    return bindings


def _unqualified_unambiguous(
    name: str, statement_sources: list[tuple[str, list[str] | None]] | None
) -> bool:
    """Whether an unqualified ``name`` names exactly one statement column.

    ``statement_sources`` lists every source of the SELECT (not just those
    already folded into the join). With it absent, or with any source's
    columns unknown (views, derived tables), unqualified names are treated
    as unusable: resolving them against a partial view could mask the
    ambiguity error the evaluator would raise.
    """
    if statement_sources is None:
        return False
    count = 0
    for _, columns in statement_sources:
        if columns is None:
            return False
        count += sum(1 for c in columns if c.lower() == name)
    return count == 1


def extract_pushdown_filter(
    where: ast.Expr | None,
    binding: str,
    columns: list[str],
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> ast.Expr | None:
    """The AND of WHERE conjuncts safe to evaluate during this source's scan.

    A conjunct qualifies when it compares one of this source's columns to a
    non-NULL literal with a null-rejecting operator. Because the full WHERE
    clause is re-applied after joins, pre-filtering only removes rows whose
    joined results the WHERE clause would reject — including rows an outer
    join would otherwise NULL-extend, which the null-rejecting conjunct then
    rejects too. Unqualified column references are only used when
    ``statement_sources`` proves them unambiguous across the whole SELECT.
    """
    if where is None:
        return None
    own_columns = {c.lower() for c in columns}
    lowered = binding.lower()
    kept: list[ast.Expr] = []
    for conjunct in split_conjuncts(where):
        if not (
            isinstance(conjunct, ast.BinaryOp)
            and conjunct.op in NULL_REJECTING_COMPARISONS
        ):
            continue
        for column_side, literal_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if (
                isinstance(column_side, ast.ColumnRef)
                and isinstance(literal_side, ast.Literal)
                and literal_side.value is not None
                and column_side.name.lower() in own_columns
                and (
                    column_side.table.lower() == lowered
                    if column_side.table is not None
                    else _unqualified_unambiguous(
                        column_side.name.lower(), statement_sources
                    )
                )
            ):
                kept.append(conjunct)
                break
    return conjoin(kept)


def _column_literal_pair(
    left: ast.Expr, right: ast.Expr, binding: str
) -> tuple[ast.ColumnRef | None, ast.Literal | None]:
    for column_side, literal_side in ((left, right), (right, left)):
        if isinstance(column_side, ast.ColumnRef) and isinstance(
            literal_side, ast.Literal
        ):
            if column_side.table is None or column_side.table.lower() == binding:
                return column_side, literal_side
    return None, None


# --------------------------------------------------------------------------
# join planning
# --------------------------------------------------------------------------

# column maps are binding name -> {lowered column -> stored column}; a None
# map means the columns are unknown (EXPLAIN over views/derived tables),
# where only qualified refs resolve


def _colmap(columns: list[str] | None) -> dict[str, str | None] | None:
    """lower name -> stored name; duplicates within the source map to None.

    Derived tables can expose the same output name twice (``SELECT x AS w,
    y AS w``); such names must stay unresolvable so they fall to the
    evaluator, which raises the ambiguity error.
    """
    if columns is None:
        return None
    mapping: dict[str, str | None] = {}
    for column in columns:
        key = column.lower()
        mapping[key] = None if key in mapping else column
    return mapping


def _resolve_ref(
    ref: ast.ColumnRef, sources: list[tuple[str, dict[str, str | None] | None]]
) -> tuple[str, str] | None:
    """Resolve a column reference to ``(binding, stored column name)``."""
    name = ref.name.lower()
    if ref.table is not None:
        qualifier = ref.table.lower()
        for binding, columns in sources:
            if binding.lower() == qualifier:
                if columns is None:
                    return binding, ref.name
                actual = columns.get(name)
                return (binding, actual) if actual is not None else None
        return None
    hits: list[tuple[str, str]] = []
    for binding, columns in sources:
        if columns is None:
            return None  # unknown columns: unqualified names are uncertain
        if name in columns:
            actual = columns[name]
            if actual is None:
                return None  # duplicated within the source: ambiguous
            hits.append((binding, actual))
    return hits[0] if len(hits) == 1 else None


def _equi_key(
    conjunct: ast.Expr,
    lefts: list[tuple[str, dict[str, str] | None]],
    right: tuple[str, dict[str, str] | None],
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> JoinKey | None:
    """A hash key if ``conjunct`` equates one left column with one right.

    ON conjuncts resolve against the join's own scope (``lefts`` + right),
    exactly like the nested-loop evaluator would. WHERE conjuncts are
    name-resolved against the *whole* statement, so callers pass
    ``statement_sources``: an unqualified name that is ambiguous with a
    source not yet folded in must not become a key — the final WHERE
    filter raises for it, and hashing on it could empty the relation
    before that error surfaces.
    """
    if not (
        isinstance(conjunct, ast.BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ast.ColumnRef)
        and isinstance(conjunct.right, ast.ColumnRef)
    ):
        return None
    if statement_sources is not None:
        for ref in (conjunct.left, conjunct.right):
            if ref.table is None and not _unqualified_unambiguous(
                ref.name.lower(), statement_sources
            ):
                return None
    for left_ref, right_ref in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        left_hit = _resolve_ref(left_ref, lefts)
        right_hit = _resolve_ref(right_ref, [right])
        if left_hit is None or right_hit is None:
            continue
        # reject refs resolvable on both sides (ambiguous; leave to the
        # evaluator, which raises the proper error)
        if _resolve_ref(left_ref, [right]) is not None:
            continue
        if _resolve_ref(right_ref, lefts) is not None:
            continue
        return JoinKey(left_hit[0], left_hit[1], right_hit[1])
    return None


def plan_join(
    kind: str,
    condition: ast.Expr | None,
    where: ast.Expr | None,
    left_sources: list[tuple[str, list[str] | None]],
    right_binding: str,
    right_columns: list[str] | None,
    allow_hash: bool = True,
    statement_sources: list[tuple[str, list[str] | None]] | None = None,
) -> JoinPlan:
    """Choose a strategy for joining ``right_binding`` onto ``left_sources``.

    Equi-keys come from the ON condition and from cross-source equality
    conjuncts of the WHERE clause (always re-checked by the final WHERE
    filter, so harvesting them is safe for outer joins too). ON conjuncts
    that are not equi-keys become the residual predicate, evaluated per
    matched pair. ``statement_sources`` (all of the SELECT's sources) guards
    WHERE-conjunct name resolution; when omitted, WHERE keys only use
    qualified references.
    """
    lefts = [(binding, _colmap(columns)) for binding, columns in left_sources]
    right = (right_binding, _colmap(right_columns))
    keys: list[JoinKey] = []
    residual: list[ast.Expr] = []
    for conjunct in split_conjuncts(condition):
        key = _equi_key(conjunct, lefts, right)
        if key is not None:
            keys.append(key)
        else:
            residual.append(conjunct)
    where_scope = statement_sources if statement_sources is not None else []
    for conjunct in split_conjuncts(where):
        key = _equi_key(conjunct, lefts, right, where_scope)
        if key is not None and key not in keys:
            keys.append(key)
    plan = JoinPlan(kind=kind, right_binding=right_binding, condition=condition)
    if keys and allow_hash:
        plan.strategy = "hash"
        plan.keys = keys
        plan.residual = conjoin(residual)
    elif condition is None:
        plan.strategy = "cross"
    else:
        plan.strategy = "nested-loop"
    return plan


# --------------------------------------------------------------------------
# whole-SELECT planning (EXPLAIN)
# --------------------------------------------------------------------------


def choose_access_path(
    table: str,
    heap: HeapTable,
    bindings: list[EqualityBinding],
) -> tuple[AccessPath, HashIndex | None, tuple | None]:
    """Pick the best index whose columns are fully equality-bound."""
    by_column = {b.column: b.value for b in bindings}
    best: HashIndex | None = None
    for index in heap.indexes.values():
        columns = tuple(c.lower() for c in index.columns)
        if all(c in by_column for c in columns):
            # prefer unique indexes, then wider keys (more selective)
            if best is None:
                best = index
                continue
            best_cols = tuple(c.lower() for c in best.columns)
            if (index.unique, len(columns)) > (best.unique, len(best_cols)):
                best = index
    if best is None:
        return AccessPath(table, "seq"), None, None
    key = tuple(by_column[c.lower()] for c in best.columns)
    path = AccessPath(
        table,
        "index",
        index_name=best.name,
        key_columns=tuple(best.columns),
    )
    return path, best, key


def _binding_of(source: "ast.TableRef | ast.SubqueryRef") -> str:
    return source.binding if isinstance(source, ast.TableRef) else source.alias


def plan_select_paths(
    stmt: ast.SelectStatement,
    table_of_binding: dict[str, str],
    heap_of_table,
    columns_of_binding: dict[str, list[str] | None] | None = None,
) -> list[AccessPath]:
    """Access paths for every base-table source of a SELECT (for EXPLAIN)."""
    paths: list[AccessPath] = []
    multi_source = (len(stmt.from_sources) + len(stmt.joins)) > 1
    statement_sources = (
        list(columns_of_binding.items())
        if multi_source and columns_of_binding
        else None
    )
    for binding, table in table_of_binding.items():
        heap = heap_of_table(table)
        bindings = extract_equality_bindings(stmt.where, binding, statement_sources)
        path, _, _ = choose_access_path(table, heap, bindings)
        if multi_source and columns_of_binding:
            columns = columns_of_binding.get(binding)
            if columns:
                predicate = extract_pushdown_filter(
                    stmt.where, binding, columns, list(columns_of_binding.items())
                )
                if predicate is not None:
                    path.filter_sql = expr_to_sql(predicate)
        paths.append(path)
    return paths


def plan_select_joins(
    stmt: ast.SelectStatement,
    columns_of_binding: dict[str, list[str] | None],
    allow_hash: bool = True,
) -> list[JoinPlan]:
    """Join plans for a SELECT's implicit FROM folds and explicit joins."""
    plans: list[JoinPlan] = []
    statement_sources = list(columns_of_binding.items())
    lefts: list[tuple[str, list[str] | None]] = []
    for source in stmt.from_sources:
        binding = _binding_of(source)
        if lefts:
            plans.append(
                plan_join(
                    "INNER",
                    None,
                    stmt.where,
                    lefts,
                    binding,
                    columns_of_binding.get(binding),
                    allow_hash,
                    statement_sources,
                )
            )
        lefts.append((binding, columns_of_binding.get(binding)))
    for join in stmt.joins:
        binding = _binding_of(join.source)
        plans.append(
            plan_join(
                join.kind,
                join.condition,
                stmt.where,
                lefts,
                binding,
                columns_of_binding.get(binding),
                allow_hash,
                statement_sources,
            )
        )
        lefts.append((binding, columns_of_binding.get(binding)))
    return plans
