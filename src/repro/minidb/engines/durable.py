"""The durable storage engine: JSONL write-ahead log + snapshots.

File layout (one directory per database)::

    <path>/
      snapshot.json   full state at the last checkpoint (atomic replace)
      wal.jsonl       one JSON record per committed mutation since then
      catalogs/       persisted retrieval value catalogs (sidecar files
                      owned by repro.retrieval; minidb only provides the
                      directory)

WAL record schema
-----------------

Every record is one JSON object on its own ``\\n``-terminated line with a
``seq`` field — a strictly increasing sequence number spanning snapshots
— plus an ``op`` and op-specific fields. The last record of each
committed transaction's batch additionally carries ``commit: true``;
recovery applies whole batches only, so a crash can never half-apply a
multi-record transaction. Row and DDL records are stamped with the
owning heap's post-mutation ``(uid, version)``, so recovery restores
change counters (and therefore retrieval-cache fingerprints) exactly:

=================  ========================================================
op                 fields
=================  ========================================================
``insert``         table, rid, row, uid, version
``update``         table, rid, row (new image), uid, version
``delete``         table, rid, uid, version
``create_table``   schema (structural), indexes (definitions), uid, version
``drop_table``     table
``add_column``     table, column (structural), fill (value applied to
                   existing rows), uid, version
``drop_column``    table, column, uid, version
``rename_column``  table, old, new, uid, version
``rename_table``   old, new
``create_index``   table, index (definition), uid, version
``drop_index``     table, index, uid, version
``create_view``    view, sql (select_to_sql round trip), or_replace
``drop_view``      view
``grant``          grantee, actions, objects, columns
``revoke``         grantee, actions, objects, columns
``create_user``    user
``analyze``        table, stats (computed statistics payload — replay
                   restores, never recomputes)
=================  ========================================================

Recovery invariants
-------------------

* **Prefix durability.** Recovery applies the longest prefix of the WAL
  whose records are newline-terminated, JSON-parseable, contiguous in
  ``seq``, and end at a ``commit``-marked record; everything after (a
  torn record from a crashed append, an unterminated transaction batch,
  or trailing garbage) is truncated from the file, never half-applied.
* **Checkpoint atomicity.** A snapshot is written to a temp file, fsynced,
  and renamed over the old one before the WAL is truncated. A crash
  between rename and truncate leaves stale WAL records whose ``seq`` is at
  or below the snapshot's ``applied_seq``; recovery skips them.
* **Exact counters.** Heap rid counters and ``(uid, version)`` change
  counters come back exactly as committed, and the process-wide uid
  allocator is advanced past every restored uid.
* **Commit boundary.** Only committed transactions reach
  :meth:`DurableEngine.append_commit` (the transaction manager discards
  rolled-back redo logs), so replay needs no compensation records. The
  WAL-consistency argument assumes minidb's documented single-writer
  usage: sessions do not mutate rows of another session's still-open
  transaction.

A ``LOCK`` file (owner pid, created O_EXCL) enforces a single writer per
directory: a concurrent open from another live process fails loudly
instead of interleaving sequence numbers; locks left by dead processes
(or this process's own crashed-and-dropped engines) are stolen.

Checkpoint/compaction policy: a checkpoint runs on demand
(:meth:`~repro.minidb.database.Database.checkpoint`) and automatically
once ``auto_checkpoint_records`` WAL records accumulate; automatic
checkpoints are deferred while any explicit transaction is open, because
heaps then contain uncommitted (undo-pending) mutations that must not be
snapshotted.
"""

from __future__ import annotations

import gc
import itertools
import json
import os
import re
import threading
import weakref
from typing import TYPE_CHECKING, Any

from ...faults import OS_FILESYSTEM, Filesystem
from ..catalog import IndexSchema
from ..errors import PersistenceError, StorageFailedError, TransactionError
from ..storage import HeapTable, reserve_heap_uids
from .base import Record, StorageEngine
from .serial import (
    dump_index,
    dump_index_schema,
    dump_privileges,
    dump_statistics,
    dump_table_schema,
    dump_view,
    load_column,
    load_index,
    load_index_schema,
    load_privileges,
    load_statistics,
    load_table_schema,
    load_view,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

SNAPSHOT_NAME = "snapshot.json"
WAL_NAME = "wal.jsonl"
CATALOG_DIR_NAME = "catalogs"
LOCK_NAME = "LOCK"
SNAPSHOT_FORMAT = 1

#: open engines of THIS process by directory — the pid lock file cannot
#: tell a live same-process engine from one that was dropped without
#: close() (a simulated crash), so same-process double-opens are policed
#: here instead
_LIVE_ENGINES: "dict[str, weakref.ref[DurableEngine]]" = {}


class DurableEngine(StorageEngine):
    """WAL + snapshot persistence rooted at one database directory."""

    durable = True

    def __init__(
        self,
        path: str,
        auto_checkpoint_records: int = 10_000,
        fsync_commits: bool = False,
        filesystem: Filesystem | None = None,
    ):
        super().__init__()
        #: the I/O seam — every file operation of this engine goes through
        #: it (enforced by the ``fs-seam`` staticcheck rule), so fault
        #: injection can reach each one; the default passthrough returns
        #: raw builtin file objects and costs nothing
        self.fs = filesystem or OS_FILESYSTEM
        self.path = os.path.abspath(path)
        self.snapshot_path = os.path.join(self.path, SNAPSHOT_NAME)
        self.wal_path = os.path.join(self.path, WAL_NAME)
        self._catalog_dir = os.path.join(self.path, CATALOG_DIR_NAME)
        #: WAL records between automatic checkpoints (0 disables them)
        self.auto_checkpoint_records = auto_checkpoint_records
        #: fsync the WAL on every commit (crash-beyond-process safety) —
        #: off by default: flush survives process death, which is the
        #: failure model the tests exercise
        self.fsync_commits = fsync_commits
        self._wal = None  #: guarded by self._commit_mutex
        #: last sequence number written or recovered
        #: guarded by self._commit_mutex
        self._seq = 0
        self._records_since_snapshot = 0  #: guarded by self._commit_mutex
        self._checkpoint_pending = False  #: guarded by self._commit_mutex
        self._closed = False  #: guarded by self._commit_mutex
        #: fail-stop panic mode: the OSError that poisoned the WAL, or
        #: ``None`` while healthy. Once set it never clears — a torn or
        #: unflushable WAL write leaves records of unknowable durability,
        #: so all further writes refuse with StorageFailedError while
        #: in-memory reads keep serving (degraded read-only operation)
        #: guarded by self._commit_mutex
        self._panic: OSError | None = None
        self._locked = False
        #: serializes WAL appends and checkpoints across sessions: ``seq``
        #: allocation and the physical write happen under one mutex, so
        #: concurrent committers can never interleave or reorder records
        #: (the WAL stays strictly increasing in ``seq``), and a checkpoint
        #: can never swap the WAL file out from under an in-flight append
        self._commit_mutex = threading.RLock()
        #: recovery / write-path observability
        self.stats = {
            "snapshot_loaded": False,
            "wal_replayed": 0,
            "wal_skipped": 0,
            "wal_truncated_bytes": 0,
            "commits": 0,
            "records": 0,
            "wal_appends": 0,
            "wal_bytes": 0,
            "wal_fsyncs": 0,
            "checkpoints": 0,
            "checkpoint_failures": 0,
            "storage_failures": 0,
        }

    # ------------------------------------------------------------ lifecycle

    @property
    def catalog_dir(self) -> str | None:
        return self._catalog_dir

    @property
    def filesystem(self) -> Filesystem:
        return self.fs

    @property
    def panicked(self) -> bool:
        return self._panic is not None  # staticcheck: ignore[guarded-by] — monotonic flag; racy reads only ever lag the (permanent) transition

    def describe(self) -> str:
        return f"durable({self.path})"

    # staticcheck: ignore[guarded-by] — recovery runs single-threaded,
    # before the engine (or its Database) is shared with any session
    def attach(self, db: "Database") -> None:
        super().attach(db)
        self.fs.makedirs(self.path, exist_ok=True)
        self.fs.makedirs(self._catalog_dir, exist_ok=True)
        self._register_live()
        try:
            self._acquire_lock()
            self._remove_orphan_temps()
            fresh = not self.fs.exists(self.snapshot_path)
            if not fresh:
                self._load_snapshot(db)
            self._replay_wal(db)
            self._prune_catalog_sidecars(db)
            self._wal = self.fs.open(self.wal_path, "a", encoding="utf-8")
            if fresh:
                # persist the base state (owner, empty catalog) immediately
                # so a WAL-only directory is never ambiguous about its origin
                self.checkpoint()
        except BaseException:
            # failed recovery must not leave the directory locked: the
            # operator's retry (possibly from another process) would be
            # refused by a lock no live engine holds
            self._deregister_live()
            self._release_lock()
            raise

    def _register_live(self) -> None:
        existing = _LIVE_ENGINES.get(self.path)
        if existing is not None and existing() is not None:
            # a dropped-without-close engine lingers until its Database
            # reference cycle is collected; give it one chance to die
            # before concluding the open handle is genuinely live
            gc.collect()
            existing = _LIVE_ENGINES.get(self.path)
        engine = existing() if existing is not None else None
        if engine is not None and not engine._closed:
            raise PersistenceError(
                f"database directory {self.path!r} is already open in this "
                "process; close() the other Database first"
            )
        _LIVE_ENGINES[self.path] = weakref.ref(self)

    def _deregister_live(self) -> None:
        existing = _LIVE_ENGINES.get(self.path)
        if existing is not None and existing() is self:
            del _LIVE_ENGINES[self.path]

    def _remove_orphan_temps(self) -> None:
        """Drop temp files a crashed predecessor left behind.

        A checkpoint that died between temp write and atomic replace
        leaves ``snapshot.json.tmp``; a crashed lock steal leaves
        ``LOCK.stale.*`` asides. Neither is ever read again — the atomic
        protocols only trust the final names — so they are garbage.
        Runs after :meth:`_acquire_lock`: we own the directory, so no
        live contender's aside can be yanked from under it.
        """
        tmp = self.snapshot_path + ".tmp"
        if self.fs.exists(tmp):
            try:
                self.fs.unlink(tmp)
            except OSError:
                pass
        try:
            names = self.fs.listdir(self.path)
        except OSError:
            return
        for name in names:
            if name.startswith(LOCK_NAME + ".stale."):
                try:
                    self.fs.unlink(os.path.join(self.path, name))
                except OSError:
                    pass

    def close(self) -> None:
        with self._commit_mutex:  # never close mid-append
            if self._closed:
                return
            self._closed = True
            if self._wal is not None:
                try:
                    self._wal.flush()
                    self.fs.fsync(self._wal)
                except (OSError, ValueError):
                    # a panicked (or newly failing) device, or a handle a
                    # failed WAL swap already closed (ValueError): the
                    # final flush is best-effort — close must stay
                    # idempotent and never raise, or degraded shutdown
                    # paths would leak the LOCK file and the live-engine
                    # registration
                    pass
                try:
                    self._wal.close()
                except (OSError, ValueError):
                    pass
                self._wal = None
            self._deregister_live()
            self._release_lock()

    #: requires self._commit_mutex
    def _ensure_open(self) -> None:
        # panic outranks closed: a failed WAL swap leaves a dead handle
        # behind, and "storage failed" is the error that explains it
        if self._panic is not None:
            raise StorageFailedError(
                f"storage engine is in fail-stop mode after a WAL write "
                f"failure ({self._panic}); reads still serve from memory — "
                "close, repair the storage, and reopen to recover"
            )
        if self._closed or self._wal is None:
            raise PersistenceError("storage engine is closed")

    #: requires self._commit_mutex
    def _enter_panic(self, exc: OSError) -> None:
        """Flip to fail-stop mode: the WAL can no longer be trusted to
        accept appends, so no further write must reach it (a torn record
        followed by a good one would make the good one unrecoverable —
        replay stops at the tear)."""
        if self._panic is None:
            self._panic = exc
            self.stats["storage_failures"] += 1

    # ---------------------------------------------------- single-writer lock

    @property
    def lock_path(self) -> str:
        return os.path.join(self.path, LOCK_NAME)

    def _acquire_lock(self) -> None:
        """Refuse to share the directory with another live writer process.

        A second writer would interleave duplicate WAL sequence numbers
        and truncate logs under the first — silent data loss. The lock
        file holds the owner's pid; a lock whose pid is dead, unparseable,
        or this very process (an earlier engine on the same path that was
        dropped without ``close()``, e.g. a simulated crash) is stale and
        stolen. Cross-process double-opens fail loudly instead.

        Ownership is only ever taken through the ``O_EXCL`` create: a
        stale lock is first *retired* by atomically renaming it aside
        (:meth:`_steal_stale_lock`) — a rename of a specific path succeeds
        for exactly one racer — and then every contender loops back to the
        ``O_EXCL`` create, which again has exactly one winner. Two
        processes racing to steal a dead owner's lock therefore can never
        both conclude they own the directory.
        """
        while True:
            try:
                # "x" = O_CREAT|O_EXCL through the seam: exactly one
                # creator wins, every other racer sees FileExistsError
                fh = self.fs.open(self.lock_path, "x")
            except FileExistsError:
                owner = self._lock_owner()
                if owner is not None and owner != self._pid():
                    raise PersistenceError(
                        f"database directory {self.path!r} is locked by "
                        f"running process {owner}"
                    ) from None
                # stale (dead owner, garbage, or our own earlier open):
                # retire it atomically, then race for the O_EXCL create
                self._steal_stale_lock()
                continue
            try:
                # newline-terminated like WAL records: a torn write of a
                # pid prefix (e.g. "6" of "61234") would otherwise parse
                # as a *different* process and brick the directory —
                # without the terminator the pid is not trusted
                fh.write(f"{self._pid()}\n")
                fh.flush()
                self.fs.fsync(fh)
            finally:
                fh.close()
            self._locked = True
            return

    _steal_counter = itertools.count(1)

    def _steal_stale_lock(self) -> bool:
        """Atomically retire a stale ``LOCK`` file; ``True`` if we did.

        ``os.rename`` of a specific source path is the compare-and-swap
        here: when several processes race to steal the same stale lock,
        exactly one rename succeeds and the losers see ``FileNotFoundError``
        (the unlink-then-recreate protocol this replaces let a slow racer
        unlink the *winner's fresh lock* and both would claim ownership).
        After the rename, the retired file's pid is re-checked: if a live
        foreign owner wrote the file between our staleness read and the
        rename, we yanked a *live* lock — it is put back via ``os.link``
        (atomic create-if-absent) and the acquire loop will fail loudly.
        """
        aside = (
            f"{self.lock_path}.stale.{self._pid()}."
            f"{next(self._steal_counter)}"
        )
        try:
            self.fs.rename(self.lock_path, aside)
        except OSError:
            return False  # another contender retired it first
        try:
            with self.fs.open(aside, "r", encoding="utf-8") as fh:
                pid = self._parse_lock_pid(fh.read())
        except OSError:
            pid = None
        if pid is not None and pid != self._pid() and self._pid_alive(pid):
            # pid re-check failed: the lock became live under us — restore
            # it unless its owner (or a new winner) already re-created one
            try:
                self.fs.link(aside, self.lock_path)
            except OSError:
                pass
        try:
            self.fs.unlink(aside)
        except OSError:
            pass
        return True

    def _pid(self) -> int:
        """This engine's process id (a seam for race-regression tests)."""
        return os.getpid()

    def _pid_alive(self, pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except (PermissionError, OverflowError, ValueError):
            return True  # exists (or unknowable): treat as alive
        return True

    @staticmethod
    def _parse_lock_pid(content: str) -> int | None:
        """Owner pid from lock-file content; ``None`` if untrustworthy.

        Only a ``\\n``-terminated record is trusted: a crash mid-write
        leaves a prefix of the pid ("6" of "61234"), which would parse as
        an unrelated — possibly live — process and wrongly refuse every
        future open. No terminator, no owner: the lock is stale.
        """
        if not content.endswith("\n"):
            return None
        try:
            return int(content.strip())
        except ValueError:
            return None

    def _lock_owner(self) -> int | None:
        """Pid of a *live* process holding the lock, else ``None``."""
        try:
            with self.fs.open(self.lock_path, "r", encoding="utf-8") as fh:
                pid = self._parse_lock_pid(fh.read())
        except OSError:
            return None
        if pid is None:
            return None
        return pid if self._pid_alive(pid) else None

    def _release_lock(self) -> None:
        if self._locked:
            self._locked = False
            try:
                self.fs.unlink(self.lock_path)
            except OSError:
                pass

    # -------------------------------------------------------------- commits

    def append_commit(self, records: list[Record]) -> None:
        with self._commit_mutex:
            self._ensure_open()
            lines = []
            last = len(records) - 1
            for position, record in enumerate(records):
                self._seq += 1
                payload = {"seq": self._seq, **record}
                if position == last:
                    # commit marker: recovery only applies whole batches, so
                    # a crash can never half-apply a multi-record transaction
                    payload["commit"] = True
                lines.append(json.dumps(payload, separators=(",", ":")))
            data = "\n".join(lines) + "\n"
            try:
                self._wal.write(data)
                self._wal.flush()
                if self.fsync_commits:
                    self.fs.fsync(self._wal)
            except OSError as exc:
                # the append may be torn on disk (recovery will truncate
                # it); nothing must ever be written after a tear, so the
                # engine goes fail-stop. NOTE the heap mutation this
                # append was persisting is already applied in memory —
                # reads keep serving it, consistent until close/reopen
                # rolls the durable state back to the last good commit.
                self._enter_panic(exc)
                raise StorageFailedError(
                    f"WAL append failed ({exc}); storage engine is now "
                    "fail-stop: writes refuse, in-memory reads keep serving"
                ) from exc
            self._records_since_snapshot += len(records)
            self.stats["commits"] += 1
            self.stats["records"] += len(records)
            self.stats["wal_appends"] += 1
            self.stats["wal_bytes"] += len(data)
            if self.fsync_commits:
                self.stats["wal_fsyncs"] += 1
            if (
                self.auto_checkpoint_records
                and self._records_since_snapshot >= self.auto_checkpoint_records
            ):
                # never checkpoint from inside a commit: the committing
                # session may be mid-statement and still holds its table
                # locks, and a quiesce wait here could sit behind other
                # statements blocked on exactly those locks. Defer to the
                # statement epilogue (maybe_run_pending_checkpoint), which
                # runs after lock release.
                self._checkpoint_pending = True

    # staticcheck: ignore[guarded-by] — benign pre-check race: checkpoint()
    # re-checks every condition under the quiesce window and commit mutex
    def run_pending_checkpoint(self) -> None:
        """Run a deferred auto-checkpoint; called by the database at the
        statement epilogue, after the session released its locks and
        observed a quiescent counter state."""
        if self._checkpoint_pending and not self._closed and self._panic is None:
            self._checkpoint_pending = False
            try:
                self.checkpoint()
            except StorageFailedError:
                # the engine went fail-stop mid-checkpoint (WAL swap
                # failure): no retry can ever succeed, and the innocent
                # statement whose epilogue triggered us already has its
                # own result — writes will surface the panic themselves
                pass
            except (TransactionError, PersistenceError):
                # two transient shapes, one reaction — re-defer and let a
                # later epilogue retry, instead of erroring out the
                # innocent statement whose epilogue triggered us:
                # * TransactionError: a BEGIN raced in between the
                #   caller's quiescence observation and checkpoint()'s
                #   own pre-check (transaction control bypasses
                #   statement admission); the racing transaction's own
                #   epilogue will retry.
                # * PersistenceError: the snapshot temp write failed
                #   (ENOSPC, EIO) — the previous snapshot + WAL are
                #   intact and compaction is merely deferred until the
                #   condition clears (e.g. space returns).
                self._checkpoint_pending = True

    # ---------------------------------------------------------- checkpoints

    def checkpoint(self) -> None:
        """Write a full snapshot and truncate the WAL (compaction).

        Runs inside the database's quiesce window (no statement in
        flight; new statements queue) and under the commit mutex (no WAL
        append can interleave with the file swap), so the snapshot always
        captures a statement-consistent state.
        """
        db = self.db
        assert db is not None
        if db.open_explicit_transactions:
            raise TransactionError(
                "cannot checkpoint while a transaction is in progress: heaps "
                "contain uncommitted changes"
            )
        with db.quiesced(), self._commit_mutex:
            self._ensure_open()  # closed or panicked engines never compact
            if db.open_explicit_transactions:
                # a transaction slipped in between the pre-check above and
                # the quiesce window; its uncommitted in-place changes must
                # not be snapshotted. Re-defer — the transaction's own
                # statement epilogue will retry once it is over. (Waiting
                # for it here would deadlock: its next statement queues on
                # the very quiesce window we hold.)
                self._checkpoint_pending = True
                return
            payload = self._snapshot_payload(db)
            tmp_path = self.snapshot_path + ".tmp"
            try:
                fh = self.fs.open(tmp_path, "w", encoding="utf-8")
                try:
                    # one write call: serialize first, so a torn snapshot
                    # write is one fault point, not thousands
                    fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
                    fh.flush()
                    self.fs.fsync(fh)
                finally:
                    fh.close()
                self.fs.replace(tmp_path, self.snapshot_path)
            except OSError as exc:
                # checkpoint failure is *recoverable*, not fail-stop: the
                # previous snapshot and the (still-growing) WAL are intact,
                # so nothing is lost — compaction is merely deferred (an
                # ENOSPC here clears when space returns). Remove the torn
                # temp so it never accumulates or shadows a later attempt.
                self.stats["checkpoint_failures"] += 1
                if self.fs.exists(tmp_path):
                    try:
                        self.fs.unlink(tmp_path)
                    except OSError:
                        pass
                raise PersistenceError(
                    f"checkpoint failed ({exc}); previous snapshot and WAL "
                    "remain authoritative, compaction deferred"
                ) from exc
            # the snapshot now covers every WAL record; truncate the log
            try:
                if self._wal is not None:
                    self._wal.close()
                self._wal = self.fs.open(self.wal_path, "w", encoding="utf-8")
                self._records_since_snapshot = 0
            except OSError as exc:
                # the old WAL handle is gone and no new one could be
                # opened: appends have nowhere to go — fail-stop. The
                # data is safe (the snapshot just written covers it).
                self._enter_panic(exc)
                raise StorageFailedError(
                    f"WAL truncation after checkpoint failed ({exc}); "
                    "storage engine is now fail-stop"
                ) from exc
            self._checkpoint_pending = False
            self.stats["checkpoints"] += 1

    #: requires self._commit_mutex
    def _snapshot_payload(self, db: "Database") -> dict[str, Any]:
        tables = []
        for schema in db.catalog.tables.values():
            heap = db.heap(schema.name)
            tables.append(
                {
                    "schema": dump_table_schema(schema),
                    "indexes": [
                        dump_index(ix) for ix in heap.indexes.values()
                    ],
                    **heap.snapshot_state(),
                }
            )
        return {
            "format": SNAPSHOT_FORMAT,
            "name": db.name,
            "applied_seq": self._seq,
            "privileges": dump_privileges(db.privileges),
            "tables": tables,
            "views": [dump_view(v) for v in db.catalog.views.values()],
            "indexes": [
                dump_index_schema(ix) for ix in db.catalog.indexes.values()
            ],
            "statistics": [
                dump_statistics(ts) for ts in db.catalog.statistics.values()
            ],
        }

    # ------------------------------------------------------------- recovery

    # staticcheck: ignore[guarded-by] — recovery runs single-threaded,
    # before the engine is shared with any session
    def _load_snapshot(self, db: "Database") -> None:
        try:
            with self.fs.open(self.snapshot_path, "r", encoding="utf-8") as fh:
                data = json.loads(fh.read())
        except (OSError, ValueError) as exc:
            raise PersistenceError(
                f"unreadable snapshot {self.snapshot_path!r}: {exc}"
            ) from exc
        if data.get("format") != SNAPSHOT_FORMAT:
            raise PersistenceError(
                f"unsupported snapshot format {data.get('format')!r}"
            )
        db.name = data["name"]
        db.privileges = load_privileges(data["privileges"])
        for entry in data["tables"]:
            schema = load_table_schema(entry["schema"])
            db.catalog.add_table(schema)
            db.heaps[schema.name.lower()] = HeapTable.from_snapshot(
                schema.name,
                entry["rows"],
                next_rid=entry["next_rid"],
                uid=entry["uid"],
                version=entry["version"],
                indexes=[load_index(ix) for ix in entry["indexes"]],
            )
        for entry in data["views"]:
            db.catalog.add_view(load_view(entry))
        for entry in data["indexes"]:
            db.catalog.add_index(load_index_schema(entry))
        # pre-statistics snapshots carry no "statistics" key; they load
        # with an empty catalog and the planner falls back to heuristics
        for entry in data.get("statistics", []):
            db.catalog.statistics[entry["table"].lower()] = load_statistics(
                entry
            )
        self._seq = data["applied_seq"]
        self.stats["snapshot_loaded"] = True

    # staticcheck: ignore[guarded-by] — recovery runs single-threaded,
    # before the engine is shared with any session
    def _replay_wal(self, db: "Database") -> None:
        """Apply the longest durable WAL prefix; truncate everything after.

        Durable prefix = complete (newline-terminated, parseable,
        seq-contiguous) records up to and including the last
        commit-marked one. Records of an unterminated trailing batch —
        a transaction whose commit marker never hit the disk — are
        truncated together with any torn bytes, so crash recovery is
        atomic at transaction granularity, not just record granularity.
        """
        if not self.fs.exists(self.wal_path):
            return
        with self.fs.open(self.wal_path, "rb") as fh:
            data = fh.read()
        valid_end = 0
        offset = 0
        last_seq: int | None = None
        pending: list[Record] = []
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                break  # un-terminated final line: torn append
            try:
                record = json.loads(data[offset:newline].decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            if not isinstance(record, dict) or not isinstance(
                record.get("seq"), int
            ):
                break
            seq = record["seq"]
            if last_seq is not None and seq != last_seq + 1:
                break  # sequence gap: everything after is not trustworthy
            last_seq = seq
            offset = newline + 1
            pending.append(record)
            if record.get("commit"):
                for batched in pending:
                    if batched["seq"] > self._seq:
                        self._apply(db, batched)
                        self._seq = batched["seq"]
                        self.stats["wal_replayed"] += 1
                    else:
                        # remnant from a checkpoint that crashed between
                        # snapshot rename and WAL truncation — already in
                        # the snapshot
                        self.stats["wal_skipped"] += 1
                pending = []
                valid_end = offset
        if valid_end < len(data):
            self.stats["wal_truncated_bytes"] += len(data) - valid_end
            with self.fs.open(self.wal_path, "r+b") as fh:
                fh.truncate(valid_end)
        self._records_since_snapshot += self.stats["wal_replayed"]

    _SIDECAR_RE = re.compile(r"\.(\d+)-(\d+)\.catalog\.pkl$")

    def _prune_catalog_sidecars(self, db: "Database") -> None:
        """Delete persisted retrieval catalogs recovery cannot vouch for.

        Sidecar files encode their ``(uid, version)`` fingerprint in the
        filename (see ``repro.retrieval.engine.CatalogStore``). Only files
        matching a heap's *exact current* fingerprint can ever be served
        again — version counters only grow — and files persisted from
        uncommitted data (counters run ahead of the WAL inside open
        transactions) would otherwise collide with a future committed
        state after a crash rewinds the counter. Pruning to the live
        fingerprint set makes both impossible.
        """
        try:
            names = self.fs.listdir(self._catalog_dir)
        except OSError:
            return
        valid = {(heap.uid, heap.version) for heap in db.heaps.values()}
        for name in names:
            path = os.path.join(self._catalog_dir, name)
            if name.endswith(".tmp"):  # torn sidecar write
                remove = True
            else:
                match = self._SIDECAR_RE.search(name)
                if match is None:
                    continue  # not a catalog sidecar; leave it alone
                fingerprint = (int(match.group(1)), int(match.group(2)))
                remove = fingerprint not in valid
            if remove:
                try:
                    self.fs.unlink(path)
                except OSError:
                    pass

    # ---------------------------------------------------------- WAL replay

    def _apply(self, db: "Database", record: Record) -> None:
        try:
            self._apply_record(db, record)
        except PersistenceError:
            raise
        except Exception as exc:
            raise PersistenceError(
                f"WAL replay failed at seq {record.get('seq')} "
                f"(op {record.get('op')!r}): {exc}"
            ) from exc

    def _apply_record(self, db: "Database", r: Record) -> None:
        op = r["op"]
        if op == "insert":
            heap = db.heaps[r["table"]]
            heap.restore(r["rid"], r["row"])
            heap.version = r["version"]
        elif op == "update":
            heap = db.heaps[r["table"]]
            heap.update(r["rid"], r["row"])
            heap.version = r["version"]
        elif op == "delete":
            heap = db.heaps[r["table"]]
            heap.delete(r["rid"])
            heap.version = r["version"]
        elif op == "create_table":
            schema = load_table_schema(r["schema"])
            db.catalog.add_table(schema)
            heap = HeapTable(schema.name)
            for entry in r["indexes"]:
                index = load_index(entry)
                heap.indexes[index.name] = index  # new table: nothing to fill
            heap.uid = r["uid"]
            heap.version = r["version"]
            reserve_heap_uids(heap.uid)
            db.heaps[schema.name.lower()] = heap
        elif op == "drop_table":
            db.drop_table_physical(r["table"])
        elif op == "add_column":
            schema = db.catalog.table(r["table"])
            heap = db.heaps[r["table"].lower()]
            schema.columns.append(load_column(r["column"]))
            heap.add_column(r["column"]["name"], r["fill"])
            heap.version = r["version"]
        elif op == "drop_column":
            schema = db.catalog.table(r["table"])
            heap = db.heaps[r["table"].lower()]
            column = schema.column(r["column"])
            schema.columns.remove(column)
            heap.drop_column(column.name)
            heap.version = r["version"]
        elif op == "rename_column":
            schema = db.catalog.table(r["table"])
            heap = db.heaps[r["table"].lower()]
            column = schema.column(r["old"])
            column.name = r["new"]
            heap.rename_column(r["old"], r["new"])
            schema.primary_key = tuple(
                r["new"] if c == r["old"] else c for c in schema.primary_key
            )
            heap.version = r["version"]
        elif op == "rename_table":
            db.catalog.rename_table(r["old"], r["new"])
            db.heaps[r["new"].lower()] = db.heaps.pop(r["old"].lower())
        elif op == "create_index":
            entry = r["index"]
            schema = db.catalog.table(r["table"])
            db.catalog.add_index(
                IndexSchema(
                    entry["name"],
                    schema.name,
                    tuple(entry["columns"]),
                    entry["unique"],
                    kind=entry.get("kind", "hash"),
                )
            )
            heap = db.heaps[r["table"].lower()]
            heap.add_index(load_index(entry))
            heap.version = r["version"]
        elif op == "drop_index":
            db.catalog.remove_index(r["index"])
            heap = db.heaps[r["table"].lower()]
            heap.drop_index(r["index"])
            heap.version = r["version"]
        elif op == "create_view":
            view = load_view({"name": r["view"], "sql": r["sql"]})
            db.catalog.add_view(view, replace=r.get("or_replace", False))
        elif op == "drop_view":
            db.catalog.remove_view(r["view"])
        elif op == "grant":
            for obj in r["objects"]:
                for action in r["actions"]:
                    db.privileges.grant(r["grantee"], action, obj, r["columns"])
        elif op == "revoke":
            for obj in r["objects"]:
                for action in r["actions"]:
                    db.privileges.revoke(r["grantee"], action, obj, r["columns"])
        elif op == "create_user":
            db.privileges.create_user(r["user"])
        elif op == "analyze":
            # the record carries the *computed* statistics, so replay
            # restores them exactly without rescanning the heap
            db.catalog.statistics[r["table"]] = load_statistics(r["stats"])
        else:
            raise PersistenceError(f"unknown WAL op {op!r}")
