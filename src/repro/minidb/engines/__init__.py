"""Pluggable storage engines for minidb.

The :class:`~repro.minidb.database.Database` facade delegates everything
durability-related to a :class:`StorageEngine`:

* :class:`InMemoryEngine` — the default. All state lives in process
  memory; every hook is a no-op, so the write path pays nothing.
* :class:`DurableEngine` — an on-disk engine combining an append-only
  JSONL write-ahead log (one record per committed mutation, stamped with
  the owning heap's ``(uid, version)``) with periodic snapshot/compaction
  files. Opening a database directory replays WAL-after-snapshot and
  restores heaps, secondary indexes, rid counters, and change counters
  exactly; a torn final WAL record (partial write at crash time) is
  detected and truncated, never half-applied.

Later engines (sharded, remote, ANN-backed) slot in behind the same
interface: the executor and transaction manager only ever see
:class:`StorageEngine` hooks.
"""

from .base import StorageEngine
from .durable import DurableEngine
from .memory import InMemoryEngine

__all__ = ["DurableEngine", "InMemoryEngine", "StorageEngine"]
