"""Structural (de)serialization between catalog objects and JSON.

The durable engine persists schema metadata *structurally* — plain JSON
for everything that is plain data — and leans on the SQL round trip only
where an AST is unavoidable: CHECK constraints travel as their rendered
SQL source (``TableSchema.check_sources``) and view definitions as
:func:`repro.minidb.sqlgen.select_to_sql` text, both re-parsed on load.
Column defaults are stored as evaluated values (the executor evaluates
DEFAULT expressions at DDL time), so they are always JSON-safe scalars.
"""

from __future__ import annotations

from typing import Any

from ..ast_nodes import Expr, SelectStatement
from ..catalog import Column, ForeignKey, IndexSchema, TableSchema, ViewSchema
from ..errors import PersistenceError
from ..parser import parse
from ..privileges import Grant, PrivilegeManager
from ..statistics import TableStatistics
from ..storage import HashIndex, SortedIndex
from ..types import ColumnType


# ---------------------------------------------------------------- SQL bridge


def parse_expression(source: str) -> Expr:
    """Re-parse one rendered expression (CHECK source) back into an AST."""
    stmt = parse(f"SELECT ({source})")
    if not isinstance(stmt, SelectStatement) or len(stmt.items) != 1:
        raise PersistenceError(f"cannot restore expression from {source!r}")
    return stmt.items[0].expr


def parse_view_select(source: str) -> SelectStatement:
    """Re-parse a persisted view definition back into a SELECT AST."""
    stmt = parse(source)
    if not isinstance(stmt, SelectStatement):
        raise PersistenceError(f"cannot restore view definition from {source!r}")
    return stmt


# ------------------------------------------------------------------- schemas


def dump_column(column: Column) -> dict[str, Any]:
    return {
        "name": column.name,
        "type": column.ctype.name,
        "length": column.ctype.length,
        "not_null": column.not_null,
        "default": column.default,
        "has_default": column.has_default,
    }


def load_column(data: dict[str, Any]) -> Column:
    return Column(
        name=data["name"],
        ctype=ColumnType(data["type"], data.get("length")),
        not_null=data["not_null"],
        default=data["default"],
        has_default=data["has_default"],
    )


def dump_table_schema(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "columns": [dump_column(c) for c in schema.columns],
        "primary_key": list(schema.primary_key),
        "foreign_keys": [
            {
                "columns": list(fk.columns),
                "ref_table": fk.ref_table,
                "ref_columns": list(fk.ref_columns),
            }
            for fk in schema.foreign_keys
        ],
        "uniques": [list(u) for u in schema.uniques],
        "checks": list(schema.check_sources),
    }


def load_table_schema(data: dict[str, Any]) -> TableSchema:
    sources = list(data["checks"])
    return TableSchema(
        name=data["name"],
        columns=[load_column(c) for c in data["columns"]],
        primary_key=tuple(data["primary_key"]),
        foreign_keys=[
            ForeignKey(
                tuple(fk["columns"]), fk["ref_table"], tuple(fk["ref_columns"])
            )
            for fk in data["foreign_keys"]
        ],
        uniques=[tuple(u) for u in data["uniques"]],
        checks=[parse_expression(source) for source in sources],
        check_sources=sources,
    )


# ------------------------------------------------------------------- indexes


def dump_index(index: "HashIndex | SortedIndex") -> dict[str, Any]:
    """Definition only — buckets/arrays are rebuilt from rows on load."""
    return {
        "name": index.name,
        "columns": list(index.columns),
        "unique": index.unique,
        "kind": index.kind,
    }


def load_index(data: dict[str, Any]) -> "HashIndex | SortedIndex":
    # pre-PR-5 snapshots and WAL records carry no "kind": they are hash
    cls = SortedIndex if data.get("kind") == "btree" else HashIndex
    return cls(data["name"], tuple(data["columns"]), data["unique"])


def dump_index_schema(schema: IndexSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "table": schema.table,
        "columns": list(schema.columns),
        "unique": schema.unique,
        "kind": schema.kind,
    }


def load_index_schema(data: dict[str, Any]) -> IndexSchema:
    return IndexSchema(
        data["name"],
        data["table"],
        tuple(data["columns"]),
        data["unique"],
        kind=data.get("kind", "hash"),
    )


# ---------------------------------------------------------------- statistics


def dump_statistics(stats: TableStatistics) -> dict[str, Any]:
    return stats.to_payload()


def load_statistics(data: dict[str, Any]) -> TableStatistics:
    return TableStatistics.from_payload(data)


# --------------------------------------------------------------------- views


def dump_view(view: ViewSchema) -> dict[str, Any]:
    return {"name": view.name, "sql": view.source_sql}


def load_view(data: dict[str, Any]) -> ViewSchema:
    return ViewSchema(
        data["name"], parse_view_select(data["sql"]), source_sql=data["sql"]
    )


# ---------------------------------------------------------------- privileges


def dump_privileges(manager: PrivilegeManager) -> dict[str, Any]:
    # hold the manager's (re-entrant) mutex across the whole dump: a
    # concurrent GRANT/create_user mutating the user table mid-iteration
    # would tear the snapshot (or persist it half-applied)
    with manager.mutex:
        return {
            "owner": manager.owner,
            "users": {
                user: [
                    [
                        grant.action,
                        grant.obj,
                        sorted(grant.columns)
                        if grant.columns is not None
                        else None,
                    ]
                    for grant in manager.grants_of(user)
                ]
                for user in manager.users()
            },
        }


def load_privileges(data: dict[str, Any]) -> PrivilegeManager:
    manager = PrivilegeManager(data["owner"])
    for user, grants in data["users"].items():
        manager.set_grants(
            user,
            [
                Grant(
                    action,
                    obj,
                    frozenset(columns) if columns is not None else None,
                )
                for action, obj, columns in grants
            ],
        )
    return manager
