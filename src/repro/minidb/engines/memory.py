"""The default engine: everything lives in process memory.

Kept as an explicit class (rather than ``engine=None`` checks sprinkled
through the write path) so the database facade, transaction manager, and
executor speak one interface regardless of backend. Every hook inherits
the no-op implementation from :class:`~repro.minidb.engines.base.
StorageEngine`; ``durable = False`` additionally short-circuits redo
logging at the source, so in-memory workloads never build redo records.
"""

from __future__ import annotations

from .base import StorageEngine


class InMemoryEngine(StorageEngine):
    """Volatile storage: state dies with the process (the seed behavior)."""

    durable = False

    def describe(self) -> str:
        return "memory"
