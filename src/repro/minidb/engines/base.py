"""The storage-engine interface every minidb backend implements.

An engine owns three concerns, all invoked from above by the database
facade and the transaction manager:

1. **Recovery** — :meth:`StorageEngine.attach` is called once at database
   construction and may populate the (still empty) catalog, heaps, and
   privilege manager from persistent state.
2. **The commit boundary** — :meth:`StorageEngine.append_commit` receives
   the redo records of exactly one committed transaction (explicit or
   autocommit). Rolled-back transactions never reach the engine; the
   transaction manager discards their redo log locally.
3. **Checkpointing** — :meth:`StorageEngine.checkpoint` compacts the
   engine's log into a snapshot; :meth:`StorageEngine.close` releases
   resources. Both are no-ops for non-durable engines.

Engines must not assume they run inside an executor statement: recovery
manipulates catalog and heap objects directly (no sessions exist yet),
and ``append_commit`` runs after heap state is already final.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from ..database import Database

#: one committed mutation, as produced by the executor's redo logging
Record = dict[str, Any]


class StorageEngine:
    """Base class: an engine with no persistence at all."""

    #: whether commits must be redo-logged and routed through the engine
    durable = False

    def __init__(self) -> None:
        self.db: "Database | None" = None

    # ------------------------------------------------------------ lifecycle

    def attach(self, db: "Database") -> None:
        """Bind to ``db`` and recover any persistent state into it."""
        self.db = db

    def close(self) -> None:
        """Flush and release resources; the engine is unusable afterwards."""

    # -------------------------------------------------------------- commits

    def append_commit(self, records: list[Record]) -> None:
        """Make one committed transaction's mutations durable."""

    def checkpoint(self) -> None:
        """Compact the durable representation (snapshot + log truncation)."""

    # ------------------------------------------------------------ side data

    @property
    def panicked(self) -> bool:
        """Whether the engine is in fail-stop panic mode (durable engines
        only; see :class:`~repro.minidb.errors.StorageFailedError`). The
        base engine has no storage to fail."""
        return False

    @property
    def filesystem(self) -> Any | None:
        """The :class:`repro.faults.Filesystem` seam this engine performs
        file I/O through, or ``None`` for engines that do none. Sidecar
        writers (persisted retrieval catalogs) must use the same seam so
        fault injection covers them too. Typed ``Any`` so minidb never
        imports the faults package at class-definition time."""
        return None

    @property
    def catalog_dir(self) -> str | None:
        """Directory for derived-cache sidecar files (persisted retrieval
        catalogs), or ``None`` when the engine has no durable home for
        them. Kept as a plain path so minidb never imports the retrieval
        layer."""
        return None

    def describe(self) -> str:
        return type(self).__name__
