"""PostgreSQL-style privilege system for minidb.

A privilege is a pair ``(action, object)`` with an optional column set for
column-level SELECT/UPDATE grants. The model follows the paper's
formalization: the privilege set of user *u* is ``P_u ⊆ A × O``.

Special users:

* the database owner (created with the database) implicitly holds every
  privilege including DDL;
* ``PUBLIC`` grants apply to all users.

DDL actions (CREATE/DROP/ALTER) are object-scoped like DML: granting
``DROP ON inventory`` lets the grantee drop that one table, while CREATE is
granted on the pseudo-object ``*`` (database-wide).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from .errors import PermissionDenied

ACTIONS = ("SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "ALTER")
ALL_OBJECTS = "*"
PUBLIC = "public"


@dataclass
class Grant:
    """One granted privilege; ``columns is None`` means the whole object."""

    action: str
    obj: str  # lower-cased object name or "*"
    columns: frozenset[str] | None = None  # lower-cased column names

    def covers_columns(self, needed: set[str] | None) -> bool:
        if self.columns is None:
            return True
        if needed is None:
            # whole-object access requested but only column grant held
            return False
        return {c.lower() for c in needed} <= self.columns


@dataclass
class _UserEntry:
    grants: list[Grant] = field(default_factory=list)


class PrivilegeManager:
    """Tracks users and their grants; answers privilege queries."""

    def __init__(self, owner: str):
        self.owner = owner
        self._users: dict[str, _UserEntry] = {
            owner.lower(): _UserEntry(),
            PUBLIC: _UserEntry(),
        }
        #: guards ``_users`` and every grants list against concurrent
        #: sessions: GRANT/REVOKE mutate while other sessions' authorize()
        #: checks and checkpoint snapshots iterate. Re-entrant because
        #: ``ALL`` grants/revokes recurse per action. Public so the
        #: snapshot serializer can hold it across a whole dump.
        self.mutex = threading.RLock()

    # ------------------------------------------------------------- users

    def create_user(self, name: str) -> None:
        with self.mutex:
            self._users.setdefault(name.lower(), _UserEntry())

    def has_user(self, name: str) -> bool:
        return name.lower() in self._users

    def users(self) -> list[str]:
        with self.mutex:
            return sorted(self._users)

    def grants_of(self, user: str) -> list[Grant]:
        """Copy of ``user``'s direct grants (no PUBLIC merge, no owner
        implication) — the serialization surface for snapshot dumps."""
        with self.mutex:
            return list(self._entry(user).grants)

    def set_grants(self, user: str, grants: list[Grant]) -> None:
        """Replace ``user``'s grant list wholesale (snapshot restore)."""
        with self.mutex:
            self.create_user(user)
            self._entry(user).grants = list(grants)

    def _entry(self, name: str) -> _UserEntry:
        key = name.lower()
        if key not in self._users:
            raise PermissionDenied(f"role {name!r} does not exist")
        return self._users[key]

    def is_owner(self, user: str) -> bool:
        return user.lower() == self.owner.lower()

    # ------------------------------------------------------------- grants

    def grant(
        self,
        user: str,
        action: str,
        obj: str,
        columns: list[str] | None = None,
    ) -> None:
        """Grant ``action`` on ``obj`` (optionally column-restricted) to ``user``."""
        action = action.upper()
        if action == "ALL":
            for each in ACTIONS:
                self.grant(user, each, obj, columns)
            return
        if action not in ACTIONS:
            raise PermissionDenied(f"unknown privilege action {action!r}")
        with self.mutex:
            self.create_user(user)
            entry = self._entry(user)
            cols = frozenset(c.lower() for c in columns) if columns else None
            grant = Grant(action, obj.lower(), cols)
            if grant not in entry.grants:
                entry.grants.append(grant)

    def revoke(
        self,
        user: str,
        action: str,
        obj: str,
        columns: list[str] | None = None,
    ) -> None:
        """Revoke matching grants. Revoking an action removes both whole-object
        and column-level grants for that (action, object)."""
        action = action.upper()
        if action == "ALL":
            for each in ACTIONS:
                self.revoke(user, each, obj, columns)
            return
        with self.mutex:
            entry = self._entry(user)
            obj_key = obj.lower()
            if columns:
                wanted = frozenset(c.lower() for c in columns)
                entry.grants = [
                    g
                    for g in entry.grants
                    if not (
                        g.action == action
                        and g.obj == obj_key
                        and g.columns == wanted
                    )
                ]
            else:
                entry.grants = [
                    g
                    for g in entry.grants
                    if not (g.action == action and g.obj == obj_key)
                ]

    # -------------------------------------------------------------- checks

    def _grants_for(self, user: str) -> list[Grant]:
        with self.mutex:
            grants = list(self._entry(user).grants)
            grants.extend(self._users[PUBLIC].grants)
            return grants

    def allows(
        self,
        user: str,
        action: str,
        obj: str,
        columns: set[str] | None = None,
    ) -> bool:
        """Whether ``user`` may perform ``action`` on ``obj`` (over ``columns``)."""
        if self.is_owner(user):
            return True
        if not self.has_user(user):
            return False
        action = action.upper()
        obj_key = obj.lower()
        for grant in self._grants_for(user):
            if grant.action != action:
                continue
            if grant.obj not in (obj_key, ALL_OBJECTS):
                continue
            if grant.covers_columns(columns):
                return True
        return False

    def check(
        self,
        user: str,
        action: str,
        obj: str,
        columns: set[str] | None = None,
    ) -> None:
        """Raise :class:`PermissionDenied` unless :meth:`allows`."""
        if not self.allows(user, action, obj, columns):
            detail = f" (columns: {', '.join(sorted(columns))})" if columns else ""
            raise PermissionDenied(
                f"permission denied for user {user!r}: {action} on {obj}{detail}"
            )

    def actions_on(self, user: str, obj: str) -> set[str]:
        """The set of actions ``user`` holds on ``obj`` (whole or partial)."""
        if self.is_owner(user):
            return set(ACTIONS)
        if not self.has_user(user):
            return set()
        obj_key = obj.lower()
        actions = set()
        for grant in self._grants_for(user):
            if grant.obj in (obj_key, ALL_OBJECTS):
                actions.add(grant.action)
        return actions

    def column_restrictions(self, user: str, action: str, obj: str) -> frozenset[str] | None:
        """Column set the user's ``action`` grant is limited to, or ``None``.

        Returns ``None`` when the user holds a whole-object grant (or is the
        owner); otherwise the union of granted column sets.
        """
        if self.is_owner(user):
            return None
        action = action.upper()
        obj_key = obj.lower()
        columns: set[str] = set()
        saw_column_grant = False
        for grant in self._grants_for(user):
            if grant.action != action or grant.obj not in (obj_key, ALL_OBJECTS):
                continue
            if grant.columns is None:
                return None
            saw_column_grant = True
            columns |= grant.columns
        if saw_column_grant:
            return frozenset(columns)
        return frozenset()  # no grant at all -> empty column set

    def accessible_objects(self, user: str, objects: list[str]) -> list[str]:
        """Filter ``objects`` to those on which ``user`` holds any action."""
        return [o for o in objects if self.actions_on(user, o)]
