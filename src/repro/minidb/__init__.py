"""minidb — a from-scratch relational database engine.

This package is the PostgreSQL stand-in for the BridgeScope reproduction:
SQL parsing, query execution with joins/aggregates/subqueries, ACID
transactions via undo logging, PK/FK/UNIQUE/NOT NULL/CHECK constraints,
views, secondary indexes, and a PostgreSQL-style privilege system with
table- and column-level grants.

Storage is pluggable (:mod:`repro.minidb.engines`): databases are
in-memory by default, while ``Database.open(path)`` mounts a durable
engine whose write-ahead log and snapshot files survive restarts with
exact crash-recovery semantics.

Public entry points: :class:`Database`, :class:`Session`,
:class:`ResultSet`, :func:`parse`, :func:`analyze`, plus the error
taxonomy in :mod:`repro.minidb.errors`.
"""

from .analysis import ObjectAccess, StatementAnalysis, analyze
from .catalog import Catalog, Column, ForeignKey, IndexSchema, TableSchema, ViewSchema
from .database import Database, Session
from .engines import DurableEngine, InMemoryEngine, StorageEngine
from .errors import (
    CatalogError,
    CheckViolation,
    DivisionByZeroError,
    DuplicateObjectError,
    ExecutionError,
    ForeignKeyViolation,
    IntegrityError,
    MiniDBError,
    NotNullViolation,
    PermissionDenied,
    PersistenceError,
    SQLSyntaxError,
    StorageFailedError,
    TransactionError,
    TypeMismatchError,
    UniqueViolation,
    UnknownColumnError,
    UnknownTableError,
)
from .parser import parse, parse_script, statement_action
from .privileges import ACTIONS, PrivilegeManager
from .result import ResultSet

__all__ = [
    "ACTIONS",
    "Catalog",
    "CatalogError",
    "CheckViolation",
    "Column",
    "Database",
    "DivisionByZeroError",
    "DuplicateObjectError",
    "DurableEngine",
    "ExecutionError",
    "ForeignKey",
    "ForeignKeyViolation",
    "InMemoryEngine",
    "IndexSchema",
    "IntegrityError",
    "MiniDBError",
    "NotNullViolation",
    "ObjectAccess",
    "PermissionDenied",
    "PersistenceError",
    "PrivilegeManager",
    "ResultSet",
    "SQLSyntaxError",
    "Session",
    "StatementAnalysis",
    "StorageEngine",
    "StorageFailedError",
    "TableSchema",
    "TransactionError",
    "TypeMismatchError",
    "UniqueViolation",
    "UnknownColumnError",
    "UnknownTableError",
    "ViewSchema",
    "analyze",
    "parse",
    "parse_script",
    "statement_action",
]
