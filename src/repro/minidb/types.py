"""SQL value types and coercion rules for minidb.

minidb supports a compact but practical type system:

``INTEGER`` (aliases INT, BIGINT, SMALLINT), ``FLOAT`` (REAL, DOUBLE,
NUMERIC, DECIMAL), ``TEXT`` (VARCHAR/CHAR with optional length), ``BOOLEAN``
and ``DATE`` (stored as ISO-8601 strings, compared lexicographically, which
is order-correct for ISO dates).

``NULL`` is represented by Python ``None`` and follows SQL three-valued
logic in the expression evaluator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from .errors import TypeMismatchError

_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")


class _CoercionFailure(ValueError):
    """Internal signal: a ``_coerce_*`` helper rejected the value.

    A ``ValueError`` subclass so it funnels through the same ``except``
    as the failures ``int()``/``float()`` raise natively, while staying
    out of the public error taxonomy — it never escapes this module
    (``coerce_value`` converts it to :class:`TypeMismatchError`).
    """


#: canonical type names
INTEGER = "INTEGER"
FLOAT = "FLOAT"
TEXT = "TEXT"
BOOLEAN = "BOOLEAN"
DATE = "DATE"

_CANONICAL = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "SERIAL": INTEGER,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "NUMERIC": FLOAT,
    "DECIMAL": FLOAT,
    "TEXT": TEXT,
    "VARCHAR": TEXT,
    "CHAR": TEXT,
    "STRING": TEXT,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
    "DATE": DATE,
    "TIMESTAMP": DATE,
    "DATETIME": DATE,
}


def canonical_type(name: str) -> str:
    """Map a declared SQL type name to its canonical minidb type.

    Raises :class:`TypeMismatchError` for unknown type names.
    """
    base = name.strip().upper()
    # strip a parenthesised length, e.g. VARCHAR(255)
    if "(" in base:
        base = base[: base.index("(")].strip()
    try:
        return _CANONICAL[base]
    except KeyError:
        raise TypeMismatchError(f"unknown SQL type: {name!r}") from None


@dataclass(frozen=True)
class ColumnType:
    """A resolved column type with optional length limit (for VARCHAR(n))."""

    name: str
    length: int | None = None

    @classmethod
    def parse(cls, declared: str) -> "ColumnType":
        """Parse a declared type like ``VARCHAR(40)`` into a ColumnType."""
        canon = canonical_type(declared)
        length = None
        match = re.search(r"\((\d+)\)", declared)
        if match and canon is TEXT:
            length = int(match.group(1))
        return cls(canon, length)

    def __str__(self) -> str:
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name


def coerce(value: Any, ctype: ColumnType | str, column: str = "?") -> Any:
    """Coerce ``value`` to column type ``ctype``.

    Follows lenient SQL semantics: integers widen to floats, numeric
    strings parse, ints 0/1 convert to booleans. ``None`` passes through
    (NULL is typeless). Raises :class:`TypeMismatchError` when the value
    cannot represent the target type.
    """
    if value is None:
        return None
    name = ctype.name if isinstance(ctype, ColumnType) else ctype
    try:
        if name == INTEGER:
            return _coerce_integer(value)
        if name == FLOAT:
            return _coerce_float(value)
        if name == BOOLEAN:
            return _coerce_boolean(value)
        if name == DATE:
            return _coerce_date(value)
        if name == TEXT:
            text = _coerce_text(value)
            limit = ctype.length if isinstance(ctype, ColumnType) else None
            if limit is not None and len(text) > limit:
                raise TypeMismatchError(
                    f"value too long for {ctype} in column {column!r}"
                )
            return text
    except TypeMismatchError:
        raise
    except (ValueError, TypeError):
        pass
    raise TypeMismatchError(
        f"cannot coerce {value!r} to {name} for column {column!r}"
    )


def _coerce_integer(value: Any) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise _CoercionFailure(value)
    if isinstance(value, str):
        return int(value.strip())
    raise _CoercionFailure(value)


def _coerce_float(value: Any) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise _CoercionFailure(value)


def _coerce_boolean(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("t", "true", "yes", "on", "1"):
            return True
        if lowered in ("f", "false", "no", "off", "0"):
            return False
    raise _CoercionFailure(value)


def _coerce_date(value: Any) -> str:
    if isinstance(value, str):
        text = value.strip()
        # accept full timestamps but keep them verbatim
        if _DATE_RE.match(text[:10]):
            return text
    raise _CoercionFailure(value)


def _coerce_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    raise _CoercionFailure(value)


def is_comparable(left: Any, right: Any) -> bool:
    """Whether two non-NULL runtime values can be ordered against each other."""
    if isinstance(left, (int, float)) and not isinstance(left, bool):
        return isinstance(right, (int, float)) and not isinstance(right, bool)
    if isinstance(left, str):
        return isinstance(right, str)
    if isinstance(left, bool):
        return isinstance(right, bool)
    return False
