"""Interactive minidb shell: ``python -m repro.minidb [--user NAME]``.

A tiny psql-style REPL against an in-memory database, useful for poking at
the engine and for demos. Meta-commands:

* ``\\d`` — list objects; ``\\d NAME`` — describe one object
* ``\\du`` — list users
* ``\\q`` — quit
"""

from __future__ import annotations

import argparse
import sys

from . import Database, MiniDBError


def run_shell(database: Database, user: str, stream=sys.stdin) -> None:
    session = database.connect(user)
    print(f"minidb shell — connected as {user!r}. \\q to quit.")
    buffer: list[str] = []
    prompt = "minidb> "
    while True:
        try:
            print(prompt, end="", flush=True)
            line = stream.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print()
            break
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith("\\"):
            if _meta_command(database, session, line):
                break
            continue
        buffer.append(line)
        if not line.endswith(";"):
            prompt = "   ...> "
            continue
        prompt = "minidb> "
        sql = " ".join(buffer)
        buffer = []
        try:
            result = session.execute(sql.rstrip(";"))
            print(result.render(max_rows=50))
        except MiniDBError as exc:
            print(f"ERROR: {exc}")


def _meta_command(database: Database, session, line: str) -> bool:
    """Handle a backslash command; returns True to quit."""
    parts = line.split()
    command = parts[0]
    if command == "\\q":
        return True
    if command == "\\d":
        if len(parts) > 1:
            name = parts[1]
            if database.catalog.has_table(name):
                print(database.catalog.table(name).render_create())
            elif database.catalog.has_view(name):
                print(database.catalog.view(name).describe())
            else:
                print(f"no such object: {name}")
        else:
            for name in database.catalog.object_names():
                kind = "view" if database.catalog.has_view(name) else "table"
                print(f"{kind}  {name}")
    elif command == "\\du":
        for name in database.privileges.users():
            print(name)
    else:
        print(f"unknown command {command}")
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.minidb", description=__doc__)
    parser.add_argument("--user", default="admin", help="user to connect as")
    parser.add_argument(
        "--init", default=None, help="SQL script file to run before the shell"
    )
    args = parser.parse_args(argv)
    database = Database(owner="admin")
    if args.user != "admin":
        database.create_user(args.user)
    if args.init:
        with open(args.init) as handle:
            database.connect("admin").execute_script(handle.read())
    run_shell(database, args.user)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
