"""Interactive minidb shell: ``python -m repro.minidb [--user NAME]``.

A tiny psql-style REPL, useful for poking at the engine and for demos.
By default the database is in-memory and dies with the shell; pass
``--data-dir PATH`` to open (or create) a durable database directory
whose state — tables, indexes, users, grants — survives across shell
sessions. Meta-commands:

* ``\\d`` — list objects; ``\\d NAME`` — describe one object
* ``\\du`` — list users
* ``\\q`` — quit
"""

from __future__ import annotations

import argparse
import sys

from . import Database, MiniDBError


def run_shell(database: Database, user: str, stream=sys.stdin) -> None:
    session = database.connect(user)
    print(f"minidb shell — connected as {user!r}. \\q to quit.")
    buffer: list[str] = []
    prompt = "minidb> "
    while True:
        try:
            print(prompt, end="", flush=True)
            line = stream.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            print()
            break
        if not line:
            break
        line = line.strip()
        if not line:
            continue
        if line.startswith("\\"):
            if _meta_command(database, session, line):
                break
            continue
        buffer.append(line)
        if not line.endswith(";"):
            prompt = "   ...> "
            continue
        prompt = "minidb> "
        sql = " ".join(buffer)
        buffer = []
        try:
            result = session.execute(sql.rstrip(";"))
            print(result.render(max_rows=50))
        except MiniDBError as exc:
            print(f"ERROR: {exc}")


def _meta_command(database: Database, session, line: str) -> bool:
    """Handle a backslash command; returns True to quit."""
    parts = line.split()
    command = parts[0]
    if command == "\\q":
        return True
    if command == "\\d":
        if len(parts) > 1:
            name = parts[1]
            if database.catalog.has_table(name):
                print(database.catalog.table(name).render_create())
            elif database.catalog.has_view(name):
                print(database.catalog.view(name).describe())
            else:
                print(f"no such object: {name}")
        else:
            for name in database.catalog.object_names():
                kind = "view" if database.catalog.has_view(name) else "table"
                print(f"{kind}  {name}")
    elif command == "\\du":
        for name in database.privileges.users():
            print(name)
    else:
        print(f"unknown command {command}")
    return False


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.minidb", description=__doc__)
    parser.add_argument("--user", default="admin", help="user to connect as")
    parser.add_argument(
        "--init", default=None, help="SQL script file to run before the shell"
    )
    parser.add_argument(
        "--data-dir",
        default=None,
        help="durable database directory (created or recovered); omit for "
        "an in-memory database",
    )
    args = parser.parse_args(argv)
    if args.data_dir:
        database = Database.open(args.data_dir, owner="admin")
    else:
        database = Database(owner="admin")
    if args.user != "admin" and not database.privileges.has_user(args.user):
        database.create_user(args.user)
    if args.init:
        with open(args.init) as handle:
            database.connect("admin").execute_script(handle.read())
    try:
        run_shell(database, args.user)
    finally:
        database.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
