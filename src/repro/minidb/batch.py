"""Column-batch (vectorized) execution primitives.

:class:`RowBatch` is the columnar intermediate representation of the
batch execution path (PR 10): a slice of a relation held as parallel
per-column value lists plus the rid vector, built batch-at-a-time from
heap scans. Processing whole batches through precompiled kernels
(:func:`repro.minidb.expressions.compile_batch_expr`) amortizes the
Python interpreter's per-row overhead — the MonetDB/X100 move — which
matters doubly under the GIL, where the dispatcher cannot parallelize
CPU-bound statements.

:class:`BatchError` is the deferred-error sentinel those kernels emit in
place of raising: SQL short-circuit semantics mean a row-at-a-time plan
may never evaluate the erroring operand for a given row (``FALSE AND
1/0``), so vectorized kernels must not raise eagerly either. An element
that errors carries its exception through the batch; it only surfaces if
the consuming operator actually needs that element's value — the same
moment the row-at-a-time plan would have raised.

This module is dependency-free within minidb so both the storage layer
(batch producers) and the expression compiler (batch consumers) can use
it without layering cycles.
"""

from __future__ import annotations

from typing import Any

#: default number of rows per batch: large enough to amortize per-batch
#: dispatch, small enough that in-flight column copies stay cache-friendly
DEFAULT_BATCH_SIZE = 1024


class BatchError:
    """Per-element deferred evaluation error inside a column batch.

    Stored *as a value* in kernel output lists (checked via
    ``type(v) is BatchError`` on the hot path). The wrapped exception is
    always a :class:`repro.minidb.errors.MiniDBError` — mirroring the
    compile-time constant folding in :func:`expressions._fold`, which
    defers exactly that hierarchy.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: Exception):
        self.exc = exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchError({self.exc!r})"


class RowBatch:
    """One columnar slice of a relation.

    ``columns`` maps column name -> list of values, all lists parallel and
    ``length`` long; ``rids`` is the matching rid vector (``None`` for
    derived relations that no longer track heap identity, e.g. the
    survivor set after filtering). Value lists are fresh copies made at
    batch-build time, so an in-flight scan never aliases live heap row
    dicts — the columnar analogue of the row path's per-row ``dict(row)``
    snapshot copies.
    """

    __slots__ = ("rids", "columns", "length")

    def __init__(
        self, rids: list[int] | None, columns: dict[str, list], length: int
    ):
        self.rids = rids
        self.columns = columns
        self.length = length
