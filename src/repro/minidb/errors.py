"""Error taxonomy for the minidb engine.

The hierarchy deliberately mirrors the error *channels* a PostgreSQL client
sees, because the agent layer reacts differently to each: a syntax error
triggers SQL repair, an unknown-identifier error triggers context retrieval,
and a permission error triggers task abort. Keeping the channels distinct is
what makes failure-driven agent behavior realistic.
"""

from __future__ import annotations


class MiniDBError(Exception):
    """Base class for every error raised by the engine."""

    #: short machine-readable code, similar in spirit to SQLSTATE classes
    code = "XX000"

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.code}: {self.message}"


class SQLSyntaxError(MiniDBError):
    """Raised by the lexer/parser for malformed SQL."""

    code = "42601"


class CatalogError(MiniDBError):
    """Schema-level failure: unknown or duplicate object."""

    code = "42P01"


class UnknownTableError(CatalogError):
    code = "42P01"


class UnknownColumnError(CatalogError):
    code = "42703"


class DuplicateObjectError(CatalogError):
    code = "42P07"


class TypeMismatchError(MiniDBError):
    """Value incompatible with the declared column type."""

    code = "42804"


class IntegrityError(MiniDBError):
    """Constraint violation (PK/FK/UNIQUE/NOT NULL/CHECK)."""

    code = "23000"


class NotNullViolation(IntegrityError):
    code = "23502"


class UniqueViolation(IntegrityError):
    code = "23505"


class ForeignKeyViolation(IntegrityError):
    code = "23503"


class CheckViolation(IntegrityError):
    code = "23514"


class PermissionDenied(MiniDBError):
    """User lacks the privilege required for the attempted operation."""

    code = "42501"


class TransactionError(MiniDBError):
    """Invalid transaction state transition (e.g. COMMIT with no BEGIN)."""

    code = "25000"


class LockError(TransactionError):
    """Base class for concurrency-control failures.

    Raised only when a lock manager is installed on the database (the
    multi-session service layer does this); single-threaded use never
    sees these. ``retryable`` tells the client whether simply re-issuing
    the work is the correct reaction.
    """

    code = "55P03"
    retryable = False


class LockTimeoutError(LockError):
    """A table lock could not be acquired within the configured timeout."""

    code = "55P03"
    retryable = True


class DeadlockError(LockError):
    """This session was chosen as the victim of a lock-wait cycle.

    The session's transaction has been (or is being) rolled back so its
    locks release and the other participants can proceed; the client
    should retry the whole transaction.
    """

    code = "40P01"
    retryable = True


class ExecutionError(MiniDBError):
    """Runtime evaluation failure (division by zero, bad cast, ...)."""

    code = "22000"


class DivisionByZeroError(ExecutionError):
    code = "22012"


class PersistenceError(MiniDBError):
    """Durable-storage failure: unreadable snapshot, corrupt WAL record
    (other than a torn tail, which recovery repairs), or I/O against a
    closed engine."""

    code = "58030"


class StorageFailedError(PersistenceError):
    """The durable engine is in fail-stop panic mode.

    Raised once a WAL append or fsync fails (the write may be torn on
    disk; continuing to append would put records of unknowable durability
    after it) and by every write attempted afterwards. Deliberately
    **not** retryable: re-issuing the statement against the same engine
    cannot succeed — the remedy is to close, fix the storage, and reopen
    (recovery truncates the torn tail). In-memory reads keep serving in
    the meantime: the service degrades to read-only instead of dying.
    """

    code = "57P02"
    retryable = False
