"""Database facade and session management — minidb's public entry point.

Typical use::

    db = Database(owner="admin")
    admin = db.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    admin.execute("INSERT INTO t VALUES (1, 'a')")
    rows = admin.execute("SELECT * FROM t").rows

Privilege enforcement happens here, before execution: each statement is
parsed, statically analyzed (:mod:`repro.minidb.analysis`), and every
``(action, object, columns)`` access is checked against the
:class:`~repro.minidb.privileges.PrivilegeManager`. The owner bypasses
checks, like a PostgreSQL superuser.
"""

from __future__ import annotations

from typing import Any

from . import ast_nodes as ast
from .analysis import StatementAnalysis, analyze
from .catalog import Catalog, IndexSchema, TableSchema
from .engines import DurableEngine, InMemoryEngine, StorageEngine
from .errors import MiniDBError, PermissionDenied, TransactionError
from .executor import Executor
from .parser import parse, parse_script
from .privileges import PrivilegeManager
from .result import ResultSet
from .storage import HashIndex, HeapTable
from .transactions import StatementGuard, TransactionManager


class Session:
    """One user's connection to a database.

    Holds per-connection transaction state; statements run in autocommit
    mode unless BEGIN was issued.
    """

    def __init__(self, db: "Database", user: str):
        self.db = db
        self.user = user
        # on a durable engine the database observes the commit boundary
        # (redo flush) and explicit-transaction lifetimes; the in-memory
        # engine skips redo logging entirely
        self.tx = TransactionManager(hooks=db if db.engine.durable else None)
        #: statements executed through this session (benchmark observability)
        self.statement_log: list[str] = []

    # ------------------------------------------------------------ execution

    def execute(self, sql: str, _skip_privileges: bool = False) -> ResultSet:
        """Parse, authorize, and execute a single SQL statement."""
        self.statement_log.append(sql)
        stmt = parse(sql)
        return self.execute_statement(stmt, _skip_privileges=_skip_privileges)

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Execute a ``;``-separated script, stopping at the first error."""
        results = []
        for stmt in parse_script(sql):
            results.append(self.execute_statement(stmt))
        return results

    def execute_statement(
        self, stmt: ast.Statement, _skip_privileges: bool = False
    ) -> ResultSet:
        analysis = analyze(stmt, self.db.catalog)
        if not _skip_privileges:
            self.db.authorize(self.user, stmt, analysis)

        # transaction control bypasses the statement guard
        if isinstance(stmt, ast.BeginStatement):
            self.tx.begin()
            return ResultSet(status="BEGIN")
        if isinstance(stmt, ast.CommitStatement):
            if not self.tx.in_transaction:
                raise TransactionError("no transaction in progress")
            self.tx.commit()
            return ResultSet(status="COMMIT")
        if isinstance(stmt, ast.RollbackStatement):
            if stmt.savepoint:
                self.tx.rollback_to_savepoint(stmt.savepoint)
                return ResultSet(status=f"ROLLBACK TO {stmt.savepoint}")
            if not self.tx.in_transaction:
                raise TransactionError("no transaction in progress")
            self.tx.rollback()
            return ResultSet(status="ROLLBACK")
        if isinstance(stmt, ast.SavepointStatement):
            self.tx.savepoint(stmt.name)
            return ResultSet(status=f"SAVEPOINT {stmt.name}")
        if isinstance(stmt, ast.ReleaseSavepointStatement):
            self.tx.release_savepoint(stmt.name)
            return ResultSet(status=f"RELEASE {stmt.name}")

        if isinstance(stmt, ast.GrantStatement):
            return self.db.apply_grant(self.user, stmt)
        if isinstance(stmt, ast.RevokeStatement):
            return self.db.apply_revoke(self.user, stmt)

        with StatementGuard(self.tx):
            return self.db.executor.execute(stmt, self)

    # --------------------------------------------------------- conveniences

    def query(self, sql: str) -> list[dict[str, Any]]:
        """Run a SELECT and return dict rows."""
        return self.execute(sql).to_dicts()

    def scalar(self, sql: str) -> Any:
        return self.execute(sql).scalar()

    @property
    def in_transaction(self) -> bool:
        return self.tx.in_transaction


class Database:
    """A minidb database instance shared by sessions.

    Storage is pluggable: the default :class:`~repro.minidb.engines.
    InMemoryEngine` keeps everything in process memory (the historical
    behavior), while :meth:`open` mounts a directory-backed
    :class:`~repro.minidb.engines.DurableEngine` whose WAL + snapshot
    files survive restarts. The facade routes the three durability
    touchpoints to the engine: recovery (at construction), the
    transaction-commit boundary (redo flush), and checkpoint/close.
    """

    def __init__(
        self,
        owner: str = "admin",
        name: str = "main",
        engine: StorageEngine | None = None,
    ):
        self.name = name
        self.engine = engine or InMemoryEngine()
        self.catalog = Catalog()
        self.heaps: dict[str, HeapTable] = {}
        self.privileges = PrivilegeManager(owner)
        self.executor = Executor(self)
        #: number of currently open explicit transactions across sessions —
        #: maintained via TransactionHooks on durable engines, used to keep
        #: checkpoints away from heaps holding uncommitted changes
        self._open_explicit = 0
        #: access-path and join-strategy counters maintained by the
        #: executor (observability)
        self.planner_stats = {
            "seq_scans": 0,
            "index_scans": 0,
            "hash_joins": 0,
            "nested_loop_joins": 0,
        }
        #: planner toggles; ``enable_hash_join=False`` forces the
        #: nested-loop fallback (benchmark baseline / debugging)
        self.planner_options = {"enable_hash_join": True}
        #: shared column-exemplar catalog cache, lazily attached by
        #: ``repro.core.minidb_binding`` (kept as a plain slot so minidb
        #: has no dependency on the retrieval layer)
        self.retrieval_cache: Any | None = None
        # recover persistent state (no-op for the in-memory engine); note
        # a recovered snapshot replaces the owner/privileges constructed
        # above — the directory's persisted identity wins
        self.engine.attach(self)

    # ----------------------------------------------------------- durability

    @classmethod
    def open(
        cls,
        path: str,
        owner: str = "admin",
        name: str = "main",
        auto_checkpoint_records: int = 10_000,
        fsync_commits: bool = False,
    ) -> "Database":
        """Open (or create) a durable database rooted at directory ``path``.

        An existing directory is recovered exactly: snapshot load, then
        WAL-after-snapshot replay with torn-tail truncation. ``owner`` and
        ``name`` only seed a *fresh* directory; a recovered snapshot's
        persisted identity takes precedence.
        """
        return cls(
            owner=owner,
            name=name,
            engine=DurableEngine(
                path,
                auto_checkpoint_records=auto_checkpoint_records,
                fsync_commits=fsync_commits,
            ),
        )

    def checkpoint(self) -> None:
        """Compact the durable representation (snapshot + WAL truncation)."""
        self.engine.checkpoint()

    def close(self) -> None:
        """Flush and detach the storage engine; sessions must not be used
        afterwards on a durable database."""
        self.engine.close()

    @property
    def open_explicit_transactions(self) -> int:
        return self._open_explicit

    # -------------------------------------------- TransactionHooks protocol

    def commit_redo(self, records: list[dict[str, Any]]) -> None:
        self.engine.append_commit(records)

    def explicit_began(self) -> None:
        self._open_explicit += 1

    def explicit_finished(self) -> None:
        self._open_explicit = max(0, self._open_explicit - 1)
        if self._open_explicit == 0 and isinstance(self.engine, DurableEngine):
            self.engine.run_pending_checkpoint()

    # ------------------------------------------------------------- sessions

    def connect(self, user: str) -> Session:
        """Open a session for ``user`` (auto-registering unknown users would
        hide configuration bugs, so unknown users are rejected)."""
        if not self.privileges.has_user(user):
            raise PermissionDenied(f"role {user!r} does not exist")
        return Session(self, user)

    def create_user(self, name: str) -> None:
        self.privileges.create_user(name)
        if self.engine.durable:
            self.engine.append_commit([{"op": "create_user", "user": name}])

    # ---------------------------------------------------------- authorizing

    def authorize(
        self, user: str, stmt: ast.Statement, analysis: StatementAnalysis
    ) -> None:
        """Enforce database-side privileges for one statement."""
        if self.privileges.is_owner(user):
            return
        if analysis.is_transaction_control:
            return
        if isinstance(stmt, (ast.GrantStatement, ast.RevokeStatement)):
            raise PermissionDenied(
                f"user {user!r} may not GRANT or REVOKE privileges"
            )
        for access in analysis.accesses:
            if access.action == "CREATE" and not self.catalog.has_object(access.obj):
                # creating a new object: CREATE is a database-wide privilege
                self.privileges.check(user, "CREATE", "*")
                continue
            columns = access.column_set()
            self.privileges.check(user, access.action, access.obj, columns)

    # ----------------------------------------------------------- grants API

    def apply_grant(self, issuer: str, stmt: ast.GrantStatement) -> ResultSet:
        if not self.privileges.is_owner(issuer):
            raise PermissionDenied(f"user {issuer!r} may not GRANT privileges")
        for obj in stmt.objects:
            if obj != "*" and not self.catalog.has_object(obj):
                raise MiniDBError(f"relation {obj!r} does not exist")
            for action in stmt.actions:
                self.privileges.grant(stmt.grantee, action, obj, stmt.columns)
        self._log_privilege_op("grant", stmt)
        return ResultSet(status="GRANT")

    def apply_revoke(self, issuer: str, stmt: ast.RevokeStatement) -> ResultSet:
        if not self.privileges.is_owner(issuer):
            raise PermissionDenied(f"user {issuer!r} may not REVOKE privileges")
        for obj in stmt.objects:
            for action in stmt.actions:
                self.privileges.revoke(stmt.grantee, action, obj, stmt.columns)
        self._log_privilege_op("revoke", stmt)
        return ResultSet(status="REVOKE")

    def _log_privilege_op(
        self, op: str, stmt: "ast.GrantStatement | ast.RevokeStatement"
    ) -> None:
        """WAL-log one GRANT/REVOKE. These bypass the transaction manager
        (they are not undo-logged), so the record is appended directly."""
        if self.engine.durable:
            self.engine.append_commit(
                [
                    {
                        "op": op,
                        "grantee": stmt.grantee,
                        "actions": list(stmt.actions),
                        "objects": list(stmt.objects),
                        "columns": list(stmt.columns) if stmt.columns else None,
                    }
                ]
            )

    # ------------------------------------------------------------- storage

    def heap(self, table: str) -> HeapTable:
        return self.heaps[table.lower()]

    def drop_table_physical(self, name: str) -> None:
        """Remove a table from catalog + heap (undo helper for CREATE)."""
        if self.catalog.has_table(name):
            self.catalog.remove_table(name)
        self.heaps.pop(name.lower(), None)
        for index in self.catalog.indexes_on(name):
            self.catalog.remove_index(index.name)

    def restore_table(
        self,
        schema: TableSchema,
        heap: HeapTable,
        indexes: list[IndexSchema],
    ) -> None:
        """Re-attach a dropped table (undo helper for DROP)."""
        self.catalog.add_table(schema)
        self.heaps[schema.name.lower()] = heap
        for index in indexes:
            self.catalog.add_index(index)

    # ----------------------------------------------------------- inspection

    def table_row_count(self, table: str) -> int:
        return len(self.heap(table))

    def snapshot(self) -> dict[str, list[dict]]:
        """Deep copy of all table contents, keyed by table name (tests)."""
        return {
            name: [dict(row) for _, row in heap.rows()]
            for name, heap in sorted(self.heaps.items())
        }
