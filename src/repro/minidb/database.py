"""Database facade and session management — minidb's public entry point.

Typical use::

    db = Database(owner="admin")
    admin = db.connect("admin")
    admin.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
    admin.execute("INSERT INTO t VALUES (1, 'a')")
    rows = admin.execute("SELECT * FROM t").rows

Privilege enforcement happens here, before execution: each statement is
parsed, statically analyzed (:mod:`repro.minidb.analysis`), and every
``(action, object, columns)`` access is checked against the
:class:`~repro.minidb.privileges.PrivilegeManager`. The owner bypasses
checks, like a PostgreSQL superuser.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from typing import Any, Callable

from ..obs import CounterMapView, MetricsRegistry, StatementTracer
from . import ast_nodes as ast
from .analysis import StatementAnalysis, analyze
from .catalog import Catalog, IndexSchema, TableSchema
from .engines import DurableEngine, InMemoryEngine, StorageEngine
from .errors import (
    DeadlockError,
    LockTimeoutError,
    MiniDBError,
    PermissionDenied,
    StorageFailedError,
    TransactionError,
)
from .executor import Executor
from .parser import parse, parse_script
from .privileges import PrivilegeManager
from .result import ResultSet
from .storage import HashIndex, HeapTable
from .transactions import StatementGuard, TransactionManager

_session_ids = itertools.count(1)


class Session:
    """One user's connection to a database.

    Holds per-connection transaction state; statements run in autocommit
    mode unless BEGIN was issued.

    When the database has a lock manager installed (the multi-session
    service layer does this), the session is also the lock *owner*: the
    executor acquires table locks against it per statement, and the
    session releases them at transaction end (strict two-phase locking —
    autocommit statements release at statement end, explicit transactions
    at COMMIT/ROLLBACK). A session chosen as deadlock victim has its whole
    transaction rolled back, so its locks free immediately and the error
    it surfaces is safely retryable.
    """

    def __init__(self, db: "Database", user: str):
        self.db = db
        self.user = user
        # on a durable engine the database observes the commit boundary
        # (redo flush) and explicit-transaction lifetimes; the in-memory
        # engine skips redo logging entirely
        self.tx = TransactionManager(hooks=db if db.engine.durable else None)
        #: statements executed through this session (benchmark observability)
        self.statement_log: list[str] = []
        #: stable human-readable lock-owner label for diagnostics
        self.label = f"{user}#{next(_session_ids)}"
        db.live_sessions.add(self)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Session {self.label}>"

    # ------------------------------------------------------------- locking

    def lock_table(self, table: str, mode: str) -> None:
        """Acquire a table lock for this session (no-op without a lock
        manager). Called by the executor: ``S`` per table read, ``X`` per
        table mutated; held until transaction end."""
        manager = self.db.lock_manager
        if manager is None:
            return
        trace = self.db.tracer.current()
        if trace is None:
            manager.acquire(self, table, mode)
            return
        with trace.span("lock-wait", table=table, mode=mode):
            manager.acquire(self, table, mode)

    def release_locks(self) -> None:
        manager = self.db.lock_manager
        if manager is not None:
            manager.release_all(self)

    # ------------------------------------------------------------ execution

    def execute(self, sql: str, _skip_privileges: bool = False) -> ResultSet:
        """Parse, authorize, and execute a single SQL statement."""
        opts = self.db.observability_options
        if opts["tracing"] or opts["slow_statement_s"] is not None:
            return self._execute_traced(sql, _skip_privileges)
        self.statement_log.append(sql)
        stmt = parse(sql)
        return self.execute_statement(stmt, _skip_privileges=_skip_privileges)

    def _execute_traced(self, sql: str, _skip_privileges: bool) -> ResultSet:
        """Tracing-enabled twin of :meth:`execute`.

        Builds a :class:`~repro.obs.tracing.StatementTrace` around the
        statement; the inner hooks (plan/lock-wait/execute/wal-flush/
        checkpoint spans, executor scan/join events) find the trace through
        the tracer's thread-local slot.
        """
        self.statement_log.append(sql)
        db = self.db
        trace = db.tracer.start(sql, user=self.user, session=self.label)
        status = "ERROR"
        error: BaseException | None = None
        stmt: ast.Statement | None = None
        try:
            with trace.span("parse"):
                stmt = parse(sql)
            result = self.execute_statement(stmt, _skip_privileges=_skip_privileges)
            status = result.status or "OK"
            trace.rows_returned = (
                len(result.rows) if result.rows else (result.rowcount or 0)
            )
            return result
        except MiniDBError as exc:
            error = exc
            raise
        finally:
            db.tracer.finish(trace, status=status, error=error)
            slow_s = db.observability_options["slow_statement_s"]
            if slow_s is not None and trace.duration_s >= slow_s:
                self._record_slow_statement(trace, stmt)

    def _record_slow_statement(
        self, trace: Any, stmt: ast.Statement | None
    ) -> None:
        """Capture SQL + trace + EXPLAIN plan for a threshold-crossing
        statement. Runs after the trace is finished (so the EXPLAIN below
        records no events of its own) and must never raise."""
        plan: list[str] = []
        if isinstance(stmt, ast.SelectStatement):
            try:
                explain = self.db.executor.execute(ast.ExplainStatement(stmt), self)
                plan = [row[0] for row in explain.rows]
            except (MiniDBError, KeyError):
                # a concurrent DROP can invalidate the plan between
                # execution and capture; the slow entry is still useful
                plan = []
        self.db.tracer.record_slow(
            {
                "sql": trace.sql,
                "duration_s": round(trace.duration_s, 9),
                "trace": trace.to_dict(),
                "plan": plan,
            }
        )

    def execute_script(self, sql: str) -> list[ResultSet]:
        """Execute a ``;``-separated script, stopping at the first error."""
        results = []
        for stmt in parse_script(sql):
            results.append(self.execute_statement(stmt))
        return results

    def execute_statement(
        self, stmt: ast.Statement, _skip_privileges: bool = False
    ) -> ResultSet:
        trace = self.db.tracer.current()
        if trace is None:
            analysis = analyze(stmt, self.db.catalog)
        else:
            with trace.span("plan"):
                analysis = analyze(stmt, self.db.catalog)
        if not _skip_privileges:
            self.db.authorize(self.user, stmt, analysis)
        self.db.ensure_writable(analysis)
        try:
            return self._dispatch_statement(stmt)
        except (DeadlockError, LockTimeoutError) as exc:
            # deadlock victim or lock-wait timeout: abort the whole
            # transaction so every lock this session holds releases (the
            # cycle's survivors / the blocked peers can proceed). Both
            # errors are retryable by contract, and retryable means the
            # client may simply re-issue BEGIN — which only works if the
            # old transaction is gone and its locks are free
            if trace is not None:
                trace.annotate("concurrency_abort", type(exc).__name__)
            if self.tx.in_transaction:
                if trace is None:
                    self.tx.rollback()
                else:
                    with trace.span("rollback", reason=type(exc).__name__):
                        self.tx.rollback()
            raise
        finally:
            if self.db.lock_manager is not None and not self.tx.in_transaction:
                # transaction over (autocommit end, COMMIT, ROLLBACK, or
                # abort above): strict 2PL releases everything here
                self.release_locks()
            # deferred auto-checkpoints run here — after lock release, so
            # the quiesce wait can never face statements blocked on locks
            # this session still holds
            self.db.maybe_run_pending_checkpoint()

    def _dispatch_statement(self, stmt: ast.Statement) -> ResultSet:
        # transaction control bypasses the statement guard
        if isinstance(stmt, ast.BeginStatement):
            self.tx.begin()
            return ResultSet(status="BEGIN")
        if isinstance(stmt, ast.CommitStatement):
            if not self.tx.in_transaction:
                raise TransactionError("no transaction in progress")
            self.tx.commit()
            return ResultSet(status="COMMIT")
        if isinstance(stmt, ast.RollbackStatement):
            if stmt.savepoint:
                self.tx.rollback_to_savepoint(stmt.savepoint)
                return ResultSet(status=f"ROLLBACK TO {stmt.savepoint}")
            if not self.tx.in_transaction:
                raise TransactionError("no transaction in progress")
            self.tx.rollback()
            return ResultSet(status="ROLLBACK")
        if isinstance(stmt, ast.SavepointStatement):
            self.tx.savepoint(stmt.name)
            return ResultSet(status=f"SAVEPOINT {stmt.name}")
        if isinstance(stmt, ast.ReleaseSavepointStatement):
            self.tx.release_savepoint(stmt.name)
            return ResultSet(status=f"RELEASE {stmt.name}")

        if isinstance(stmt, (ast.GrantStatement, ast.RevokeStatement)):
            # privilege mutations run inside the statement-admission
            # window so a deferred checkpoint never snapshots them
            # half-applied (the WAL append and the _users mutation must
            # both land on the same side of the snapshot)
            self.db.statement_started()
            try:
                if isinstance(stmt, ast.GrantStatement):
                    return self.db.apply_grant(self.user, stmt)
                return self.db.apply_revoke(self.user, stmt)
            finally:
                self.db.statement_finished()

        self.db.statement_started()
        try:
            trace = self.db.tracer.current()
            if trace is None:
                with StatementGuard(self.tx):
                    return self.db.executor.execute(stmt, self)
            with trace.span("execute"):
                with StatementGuard(self.tx):
                    return self.db.executor.execute(stmt, self)
        finally:
            self.db.statement_finished()

    # --------------------------------------------------------- conveniences

    def query(self, sql: str) -> list[dict[str, Any]]:
        """Run a SELECT and return dict rows."""
        return self.execute(sql).to_dicts()

    def scalar(self, sql: str) -> Any:
        return self.execute(sql).scalar()

    @property
    def in_transaction(self) -> bool:
        return self.tx.in_transaction


class _QuiesceGuard:
    """Drains in-flight statements and blocks new ones for a checkpoint."""

    def __init__(self, db: "Database"):
        self.db = db

    def __enter__(self) -> "_QuiesceGuard":
        db = self.db
        with db._quiesce:
            while db._checkpointing:
                db._quiesce.wait()
            db._checkpointing = True
            while db._inflight > 0:
                db._quiesce.wait()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        db = self.db
        with db._quiesce:
            db._checkpointing = False
            db._quiesce.notify_all()


class Database:
    """A minidb database instance shared by sessions.

    Storage is pluggable: the default :class:`~repro.minidb.engines.
    InMemoryEngine` keeps everything in process memory (the historical
    behavior), while :meth:`open` mounts a directory-backed
    :class:`~repro.minidb.engines.DurableEngine` whose WAL + snapshot
    files survive restarts. The facade routes the three durability
    touchpoints to the engine: recovery (at construction), the
    transaction-commit boundary (redo flush), and checkpoint/close.
    """

    def __init__(
        self,
        owner: str = "admin",
        name: str = "main",
        engine: StorageEngine | None = None,
    ):
        self.name = name
        self.engine = engine or InMemoryEngine()
        self.catalog = Catalog()
        self.heaps: dict[str, HeapTable] = {}
        self.privileges = PrivilegeManager(owner)
        self.executor = Executor(self)
        #: optional table-level lock manager (duck-typed: ``acquire(owner,
        #: table, mode)`` / ``release_all(owner)``). ``None`` — the default
        #: — means single-threaded use with zero locking overhead; the
        #: multi-session service layer installs a
        #: :class:`repro.service.LockManager` here
        self.lock_manager: Any | None = None
        #: guards the cross-session counters below (open-transaction and
        #: in-flight-statement counts) against concurrent sessions; never
        #: held while executing statements
        self._mutex = threading.Lock()
        #: condition on the same mutex coordinating statement admission
        #: with checkpoint quiescence (see :meth:`quiesced`)
        self._quiesce = threading.Condition(self._mutex)
        self._checkpointing = False  #: guarded by self._mutex
        #: number of currently open explicit transactions across sessions —
        #: maintained via TransactionHooks on durable engines, used to keep
        #: checkpoints away from heaps holding uncommitted changes
        #: guarded by self._mutex
        self._open_explicit = 0
        #: statements currently inside the executor across all sessions —
        #: auto-checkpoints defer while any are running, because a snapshot
        #: taken mid-statement would capture half-applied mutations
        #: guarded by self._mutex
        self._inflight = 0
        #: unified metrics registry (PR 9): every counter the engine keeps
        #: is either a registry instrument or re-exported through an
        #: attached collector source (engine stats, lock stats, retrieval
        #: cache stats, service metrics)
        self.metrics = MetricsRegistry()
        #: access-path and join-strategy counters maintained by the
        #: executor, backed by registry counters (atomic increments — the
        #: old plain-dict bumps could lose updates across executor
        #: threads); ``planner_stats`` stays the compatible read view
        self._planner_counters = {
            name: self.metrics.counter(
                f"minidb_planner_{name}_total", f"planner access-path count: {name}"
            )
            for name in (
                "seq_scans",
                "index_scans",
                "range_scans",
                "union_scans",
                "ordered_scans",
                "topn_limits",
                "hash_joins",
                "nested_loop_joins",
                "batch_scans",
            )
        }
        self.planner_stats = CounterMapView(self._planner_counters)
        #: planner toggles (benchmark baselines / debugging):
        #: ``enable_hash_join=False`` forces the nested-loop fallback;
        #: ``enable_index_scan=False`` forces sequential scans (disables
        #: equality probes, range scans, and ordered index scans);
        #: ``enable_topn=False`` forces full sorts under ORDER BY+LIMIT;
        #: ``enable_compiled_predicates=False`` forces the AST-walking
        #: expression interpreter; ``enable_batch_execution=False`` forces
        #: row-at-a-time execution for single-table statements that would
        #: otherwise run on the column-batch path (``batch_size`` rows per
        #: :class:`repro.minidb.batch.RowBatch`)
        self.planner_options = {
            "enable_hash_join": True,
            "enable_index_scan": True,
            "enable_topn": True,
            "enable_compiled_predicates": True,
            "enable_batch_execution": True,
            "batch_size": 1024,
        }
        #: shared column-exemplar catalog cache, lazily attached by
        #: ``repro.core.minidb_binding`` (kept as a plain slot so minidb
        #: has no dependency on the retrieval layer)
        self.retrieval_cache: Any | None = None
        #: observability switches (all default to the dark, zero-cost
        #: configuration): ``tracing`` records finished statements into the
        #: tracer ring (and the optional ``trace_sink`` JSONL path);
        #: ``slow_statement_s`` captures SQL + trace + EXPLAIN plan for
        #: statements at or above the threshold; ``redact_literals``
        #: strips literal values from captured SQL
        self.observability_options: dict[str, Any] = {
            "tracing": False,
            "slow_statement_s": None,
            "redact_literals": False,
            "trace_sink": None,
        }
        #: per-statement structured tracing (ring buffer + thread-local
        #: current-trace slot); shares the engine's Filesystem seam so a
        #: JSONL trace sink is fault-injectable like the WAL
        self.tracer = StatementTracer(
            self.observability_options,
            registry=self.metrics,
            filesystem=getattr(self.engine, "fs", None),
        )
        #: live sessions (weak — sessions die with their owners) feeding
        #: the ``system.sessions`` view
        self.live_sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()
        self.metrics.attach_source("engine", self._engine_metric_samples)
        self.metrics.attach_source("locks", self._lock_metric_samples)
        self.metrics.attach_source("retrieval", self._retrieval_metric_samples)
        self.metrics.attach_source("sessions", self._session_metric_samples)
        # recover persistent state (no-op for the in-memory engine); note
        # a recovered snapshot replaces the owner/privileges constructed
        # above — the directory's persisted identity wins
        self.engine.attach(self)

    # ----------------------------------------------------------- durability

    @classmethod
    def open(
        cls,
        path: str,
        owner: str = "admin",
        name: str = "main",
        auto_checkpoint_records: int = 10_000,
        fsync_commits: bool = False,
        filesystem: Any | None = None,
    ) -> "Database":
        """Open (or create) a durable database rooted at directory ``path``.

        An existing directory is recovered exactly: snapshot load, then
        WAL-after-snapshot replay with torn-tail truncation. ``owner`` and
        ``name`` only seed a *fresh* directory; a recovered snapshot's
        persisted identity takes precedence. ``filesystem`` substitutes
        the engine's I/O seam (a :class:`repro.faults.Filesystem`) —
        fault-injection harnesses pass a scripted
        :class:`repro.faults.FaultyFilesystem` here.
        """
        return cls(
            owner=owner,
            name=name,
            engine=DurableEngine(
                path,
                auto_checkpoint_records=auto_checkpoint_records,
                fsync_commits=fsync_commits,
                filesystem=filesystem,
            ),
        )

    def checkpoint(self) -> None:
        """Compact the durable representation (snapshot + WAL truncation)."""
        self.engine.checkpoint()

    def close(self) -> None:
        """Flush and detach the storage engine; sessions must not be used
        afterwards on a durable database."""
        self.engine.close()

    @property
    def open_explicit_transactions(self) -> int:
        return self._open_explicit  # staticcheck: ignore[guarded-by] — racy monitoring/pre-check read; every correctness-bearing check re-runs under the quiesce window

    @property
    def inflight_statements(self) -> int:
        return self._inflight  # staticcheck: ignore[guarded-by] — racy monitoring read (observability only)

    def ensure_writable(self, analysis: StatementAnalysis) -> None:
        """Refuse mutating statements while the engine is in fail-stop
        panic mode (see :class:`~repro.minidb.errors.StorageFailedError`).

        Checked *before* execution so the in-memory heaps never apply a
        mutation whose WAL append is known to be impossible — reads keep
        serving a consistent (pre-failure) state instead of one that
        silently diverges from what recovery will reconstruct.
        Transaction control stays allowed: a client must still be able to
        ROLLBACK its way out of an open transaction.
        """
        if analysis.is_read_only or analysis.is_transaction_control:
            return
        for access in analysis.accesses:
            # the system.* namespace is reserved for the read-only
            # observability views (covers quoted identifiers like
            # CREATE TABLE "system.statements" that would shadow them)
            if access.obj.startswith("system.") and access.action in (
                "INSERT",
                "UPDATE",
                "DELETE",
                "CREATE",
                "DROP",
                "ALTER",
                "GRANT",
            ):
                raise PermissionDenied(
                    f"system catalog {access.obj!r} is read-only"
                )
        if self.engine.panicked:
            raise StorageFailedError(
                "storage engine is in fail-stop mode: the database is "
                "serving reads only; close, repair storage, and reopen"
            )

    def statement_started(self) -> None:
        """Admit one statement into the executor.

        Blocks while a checkpoint is snapshotting: heaps must not change
        under the snapshot writer, and a statement started mid-snapshot
        could be captured half-applied. In-memory engines never
        checkpoint, so they skip the shared mutex entirely (the module's
        zero-overhead-when-unused contract).
        """
        if not self.engine.durable:
            return
        with self._quiesce:
            if self._checkpointing:
                trace = self.tracer.current()
                if trace is None:
                    while self._checkpointing:
                        self._quiesce.wait()
                else:
                    with trace.span("checkpoint-stall"):
                        while self._checkpointing:
                            self._quiesce.wait()
            self._inflight += 1

    def statement_finished(self) -> None:
        if not self.engine.durable:
            return
        with self._quiesce:
            self._inflight = max(0, self._inflight - 1)
            self._quiesce.notify_all()

    def maybe_run_pending_checkpoint(self) -> None:
        """Run a deferred auto-checkpoint if the database looks quiescent.

        Called by sessions at the end of :meth:`Session.execute_statement`
        — crucially *after* lock release, so the checkpoint's quiesce wait
        never deadlocks against a statement blocked on this session's
        locks. The look is racy by design; :meth:`DurableEngine.checkpoint`
        re-checks (and re-defers) under its own quiesce window.
        """
        if not isinstance(self.engine, DurableEngine):
            return
        with self._quiesce:
            quiesced = self._inflight == 0 and self._open_explicit == 0
        if quiesced:
            trace = self.tracer.current()
            if trace is None:
                self.engine.run_pending_checkpoint()
            else:
                with trace.span("checkpoint"):
                    self.engine.run_pending_checkpoint()

    def quiesced(self) -> "_QuiesceGuard":
        """Context manager giving the caller (a checkpoint) a window with
        no statement in flight; new statements queue until it exits."""
        return _QuiesceGuard(self)

    def bump_planner_stat(self, name: str) -> None:
        """Thread-safe increment of one access-path/join-strategy counter."""
        self._planner_counters[name].inc()

    # -------------------------------------------------- metric collectors

    def _engine_metric_samples(self) -> dict[str, Any]:
        if not self.engine.durable:
            return {}
        samples = {
            f"minidb_engine_{key}": value
            for key, value in self.engine.stats.items()
            if isinstance(value, (int, float))
        }
        samples["minidb_engine_panicked"] = 1 if self.engine.panicked else 0
        return samples

    def _lock_metric_samples(self) -> dict[str, Any]:
        manager = self.lock_manager
        if manager is None:
            return {}
        samples = {
            f"minidb_lock_{key}": value
            for key, value in manager.stats.items()
            if isinstance(value, (int, float))
        }
        samples["minidb_lock_waiting"] = manager.waiting_count()
        return samples

    def _retrieval_metric_samples(self) -> dict[str, Any]:
        cache = self.retrieval_cache
        if cache is None:
            return {}
        samples = {
            f"minidb_retrieval_cache_{key}": value
            for key, value in getattr(cache, "stats", {}).items()
            if isinstance(value, (int, float))
        }
        store = getattr(cache, "store", None)
        if store is not None:
            for key, value in getattr(store, "stats", {}).items():
                if isinstance(value, (int, float)):
                    samples[f"minidb_retrieval_store_{key}"] = value
        return samples

    def _session_metric_samples(self) -> dict[str, Any]:
        return {"minidb_sessions_live": len(self.live_sessions)}

    def ensure_retrieval_cache(self, factory: Callable[[], Any]) -> Any:
        """Lazily attach the shared retrieval cache exactly once.

        Concurrent sessions race to the first ``get_value`` call; without
        the guard, both would build a cache and one would be silently
        dropped together with any catalog it already built.
        """
        with self._mutex:
            if self.retrieval_cache is None:
                self.retrieval_cache = factory()
            return self.retrieval_cache

    # -------------------------------------------- TransactionHooks protocol

    def commit_redo(self, records: list[dict[str, Any]]) -> None:
        trace = self.tracer.current()
        if trace is None:
            self.engine.append_commit(records)
            return
        with trace.span("wal-flush", records=len(records)):
            self.engine.append_commit(records)

    def explicit_began(self) -> None:
        with self._mutex:
            self._open_explicit += 1

    def explicit_finished(self) -> None:
        # no checkpoint trigger here: the finishing session may still hold
        # table locks (released later in execute_statement's finally),
        # which a quiesce wait must never sit behind — the statement's
        # epilogue calls maybe_run_pending_checkpoint at the safe point
        with self._mutex:
            self._open_explicit = max(0, self._open_explicit - 1)

    # ------------------------------------------------------------- sessions

    def connect(self, user: str) -> Session:
        """Open a session for ``user`` (auto-registering unknown users would
        hide configuration bugs, so unknown users are rejected)."""
        if not self.privileges.has_user(user):
            raise PermissionDenied(f"role {user!r} does not exist")
        return Session(self, user)

    def create_user(self, name: str) -> None:
        # same admission-window + ordering-point discipline as
        # apply_grant: keeps the mutation out of checkpoint snapshots
        # mid-flight and the WAL order identical to the memory order
        if self.engine.panicked:
            raise StorageFailedError(
                "storage engine is in fail-stop mode: cannot create users"
            )
        self.statement_started()
        try:
            with self.privileges.mutex:
                self.privileges.create_user(name)
                if self.engine.durable:
                    self.engine.append_commit(
                        [{"op": "create_user", "user": name}]
                    )
        finally:
            self.statement_finished()

    # ---------------------------------------------------------- authorizing

    def authorize(
        self, user: str, stmt: ast.Statement, analysis: StatementAnalysis
    ) -> None:
        """Enforce database-side privileges for one statement."""
        if self.privileges.is_owner(user):
            return
        if analysis.is_transaction_control:
            return
        if isinstance(stmt, (ast.GrantStatement, ast.RevokeStatement)):
            raise PermissionDenied(
                f"user {user!r} may not GRANT or REVOKE privileges"
            )
        for access in analysis.accesses:
            if access.action == "SELECT" and access.obj.startswith("system."):
                # system views are world-readable, pg_catalog-style: every
                # authenticated session may introspect the service
                continue
            if access.action == "CREATE" and not self.catalog.has_object(access.obj):
                # creating a new object: CREATE is a database-wide privilege
                self.privileges.check(user, "CREATE", "*")
                continue
            columns = access.column_set()
            self.privileges.check(user, access.action, access.obj, columns)

    # ----------------------------------------------------------- grants API

    def apply_grant(self, issuer: str, stmt: ast.GrantStatement) -> ResultSet:
        if not self.privileges.is_owner(issuer):
            raise PermissionDenied(f"user {issuer!r} may not GRANT privileges")
        # one ordering point: the in-memory mutation and the WAL append
        # must land in the same order for every concurrent GRANT/REVOKE,
        # or recovery replays a different privilege state than the live
        # database had. Safe against the checkpoint's opposite-order
        # acquisition (commit mutex, then privileges.mutex in the dump)
        # because grants run inside the statement-admission window the
        # checkpoint quiesces first.
        with self.privileges.mutex:
            for obj in stmt.objects:
                if obj != "*" and not self.catalog.has_object(obj):
                    raise MiniDBError(f"relation {obj!r} does not exist")
                for action in stmt.actions:
                    self.privileges.grant(stmt.grantee, action, obj, stmt.columns)
            self._log_privilege_op("grant", stmt)
        return ResultSet(status="GRANT")

    def apply_revoke(self, issuer: str, stmt: ast.RevokeStatement) -> ResultSet:
        if not self.privileges.is_owner(issuer):
            raise PermissionDenied(f"user {issuer!r} may not REVOKE privileges")
        with self.privileges.mutex:  # see apply_grant
            for obj in stmt.objects:
                for action in stmt.actions:
                    self.privileges.revoke(stmt.grantee, action, obj, stmt.columns)
            self._log_privilege_op("revoke", stmt)
        return ResultSet(status="REVOKE")

    def _log_privilege_op(
        self, op: str, stmt: "ast.GrantStatement | ast.RevokeStatement"
    ) -> None:
        """WAL-log one GRANT/REVOKE. These bypass the transaction manager
        (they are not undo-logged), so the record is appended directly."""
        if self.engine.durable:
            self.engine.append_commit(
                [
                    {
                        "op": op,
                        "grantee": stmt.grantee,
                        "actions": list(stmt.actions),
                        "objects": list(stmt.objects),
                        "columns": list(stmt.columns) if stmt.columns else None,
                    }
                ]
            )

    # ------------------------------------------------------------- storage

    def heap(self, table: str) -> HeapTable:
        return self.heaps[table.lower()]

    def drop_table_physical(self, name: str) -> None:
        """Remove a table from catalog + heap (undo helper for CREATE)."""
        if self.catalog.has_table(name):
            self.catalog.remove_table(name)
        self.heaps.pop(name.lower(), None)
        for index in self.catalog.indexes_on(name):
            self.catalog.remove_index(index.name)

    def restore_table(
        self,
        schema: TableSchema,
        heap: HeapTable,
        indexes: list[IndexSchema],
    ) -> None:
        """Re-attach a dropped table (undo helper for DROP)."""
        self.catalog.add_table(schema)
        self.heaps[schema.name.lower()] = heap
        for index in indexes:
            self.catalog.add_index(index)

    # ----------------------------------------------------------- inspection

    def table_row_count(self, table: str) -> int:
        return len(self.heap(table))

    def snapshot(self) -> dict[str, list[dict]]:
        """Deep copy of all table contents, keyed by table name (tests)."""
        return {
            name: [dict(row) for _, row in heap.rows()]
            for name, heap in sorted(self.heaps.items())
        }
