"""SQL lexer for minidb.

Produces a flat list of :class:`Token` objects consumed by the
recursive-descent parser. The token language covers the SQL dialect minidb
executes: identifiers (optionally double-quoted), string literals with
doubled-quote escaping, numeric literals, operators, and punctuation.
Keywords are not distinguished here — the parser matches identifier tokens
case-insensitively against expected keywords, which keeps the lexer small
and lets column names shadow non-reserved words.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SQLSyntaxError

# token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
PUNCT = "PUNCT"
PARAM = "PARAM"
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPS = "+-*/%<>="
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (for error messages)."""

    kind: str
    value: str
    pos: int

    def matches_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.value.upper() == word.upper()


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises :class:`SQLSyntaxError` on unterminated strings or illegal
    characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SQLSyntaxError(f"unterminated comment at position {i}")
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(STRING, value, i))
            continue
        if ch == '"':
            value, i = _read_quoted_identifier(sql, i)
            tokens.append(Token(IDENT, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            tokens.append(Token(IDENT, sql[start:i], start))
            continue
        if sql[i : i + 2] in _TWO_CHAR_OPS:
            tokens.append(Token(OP, sql[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(PUNCT, ch, i))
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        raise SQLSyntaxError(f"illegal character {ch!r} at position {i}")
    tokens.append(Token(EOF, "", n))
    return tokens


def _read_string(sql: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``start``.

    SQL escapes a quote by doubling it: ``'it''s'`` → ``it's``.
    """
    parts: list[str] = []
    i = start + 1
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SQLSyntaxError(f"unterminated string literal at position {start}")


def _read_quoted_identifier(sql: str, start: int) -> tuple[str, int]:
    end = sql.find('"', start + 1)
    if end < 0:
        raise SQLSyntaxError(f"unterminated quoted identifier at position {start}")
    return sql[start + 1 : end], end + 1


def _read_number(sql: str, start: int) -> tuple[str, int]:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            # exponent must be followed by optional sign + digits
            j = i + 1
            if j < n and sql[j] in "+-":
                j += 1
            if j < n and sql[j].isdigit():
                seen_exp = True
                i = j
            else:
                break
        else:
            break
    return sql[start:i], i
