"""Expression evaluation with SQL three-valued logic.

Two evaluation strategies live here:

* The :class:`Evaluator` walks the AST produced by
  :mod:`repro.minidb.parser` against a :class:`Row` scope (a mapping from
  column bindings to values) — the general path, required for subqueries
  and outer-scope (correlated) references.
* :func:`compile_predicate` compiles an expression tree *once per
  statement* into a chain of Python closures — constants folded, AND/OR
  short-circuited, LIKE patterns pre-compiled to regexes, and column
  references resolved at compile time to direct slot reads — so per-row
  evaluation skips the AST walk, the method dispatch, and the per-lookup
  name formatting entirely. Expressions the compiler cannot handle
  (subqueries, aggregates, names that may resolve to an outer scope)
  return ``None`` and the caller falls back to the interpreter; both
  paths share the same arithmetic/comparison kernels, so results and
  errors are identical.

Aggregate functions are *not* evaluated here — the executor rewrites
aggregate calls into pre-computed literals before projection; this module
raises if it meets one, which doubles as a safety net against mis-planned
queries.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from . import ast_nodes as ast
from .errors import (
    DivisionByZeroError,
    ExecutionError,
    MiniDBError,
    UnknownColumnError,
)
from .functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS
from .types import ColumnType, coerce

#: evaluator used for sub-SELECTs; injected by the executor to avoid an
#: import cycle (executor imports expressions).
SubqueryRunner = Callable[[ast.SelectStatement, "Scope"], list[tuple]]


class Scope:
    """Name-resolution scope for one row, with optional outer scope.

    ``bindings`` maps *qualified* names (``alias.column``) and unqualified
    column names to values. Ambiguous unqualified names raise.
    """

    __slots__ = ("qualified", "unqualified", "ambiguous", "outer")

    def __init__(
        self,
        qualified: Mapping[str, Any],
        unqualified: Mapping[str, Any],
        ambiguous: frozenset[str] = frozenset(),
        outer: "Scope | None" = None,
    ):
        self.qualified = qualified
        self.unqualified = unqualified
        self.ambiguous = ambiguous
        self.outer = outer

    def lookup(self, ref: ast.ColumnRef) -> Any:
        if ref.table:
            key = f"{ref.table.lower()}.{ref.name.lower()}"
            if key in self.qualified:
                return self.qualified[key]
        else:
            name = ref.name.lower()
            if name in self.ambiguous:
                raise UnknownColumnError(f"column reference {ref.name!r} is ambiguous")
            if name in self.unqualified:
                return self.unqualified[name]
        if self.outer is not None:
            return self.outer.lookup(ref)
        raise UnknownColumnError(f"column {ref} does not exist")


class Evaluator:
    """Evaluates expressions against a scope; one instance per query."""

    def __init__(self, run_subquery: SubqueryRunner | None = None):
        self._run_subquery = run_subquery

    # ------------------------------------------------------------------ API

    def evaluate(self, expr: ast.Expr, scope: Scope) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, scope)

    def evaluate_predicate(self, expr: ast.Expr, scope: Scope) -> bool:
        """Evaluate a WHERE/HAVING condition; NULL counts as false."""
        value = self.evaluate(expr, scope)
        return value is True

    # ------------------------------------------------------------ dispatch

    def _eval_Literal(self, expr: ast.Literal, scope: Scope) -> Any:
        return expr.value

    def _eval_ColumnRef(self, expr: ast.ColumnRef, scope: Scope) -> Any:
        return scope.lookup(expr)

    def _eval_Star(self, expr: ast.Star, scope: Scope) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    def _eval_UnaryOp(self, expr: ast.UnaryOp, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        if expr.op == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if expr.op == "-":
            _require_number(value, "unary -")
            return -value
        if expr.op == "+":
            _require_number(value, "unary +")
            return value
        raise ExecutionError(f"unknown unary operator {expr.op}")

    def _eval_BinaryOp(self, expr: ast.BinaryOp, scope: Scope) -> Any:
        op = expr.op
        if op == "AND":
            return _three_valued_and(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        if op == "OR":
            return _three_valued_or(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if left is None or right is None:
            return None
        if op == "||":
            return _to_text(left) + _to_text(right)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        raise ExecutionError(f"unknown binary operator {op}")

    def _eval_FunctionCall(self, expr: ast.FunctionCall, scope: Scope) -> Any:
        name = expr.name
        if name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate function {name}() is not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {name}()")
        args = [self.evaluate(a, scope) for a in expr.args]
        return fn(args)

    def _eval_CaseExpr(self, expr: ast.CaseExpr, scope: Scope) -> Any:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, scope)
            for when, then in expr.whens:
                candidate = self.evaluate(when, scope)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare("=", subject, candidate) is True
                ):
                    return self.evaluate(then, scope)
        else:
            for when, then in expr.whens:
                if self.evaluate(when, scope) is True:
                    return self.evaluate(then, scope)
        if expr.default is not None:
            return self.evaluate(expr.default, scope)
        return None

    def _eval_InExpr(self, expr: ast.InExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        if isinstance(expr.candidates, ast.SelectStatement):
            rows = self._subquery_rows(expr.candidates, scope)
            values = [row[0] for row in rows]
        else:
            values = [self.evaluate(c, scope) for c in expr.candidates]
        if operand is None:
            return None
        saw_null = False
        for value in values:
            if value is None:
                saw_null = True
                continue
            if _compare("=", operand, value) is True:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_BetweenExpr(self, expr: ast.BetweenExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        low = self.evaluate(expr.low, scope)
        high = self.evaluate(expr.high, scope)
        if operand is None or low is None or high is None:
            return None
        result = (
            _compare(">=", operand, low) is True
            and _compare("<=", operand, high) is True
        )
        return (not result) if expr.negated else result

    def _eval_LikeExpr(self, expr: ast.LikeExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        pattern = self.evaluate(expr.pattern, scope)
        if operand is None or pattern is None:
            return None
        text = _to_text(operand)
        result = _like_match(text, _to_text(pattern), expr.case_insensitive)
        return (not result) if expr.negated else result

    def _eval_IsNullExpr(self, expr: ast.IsNullExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        is_null = value is None
        return (not is_null) if expr.negated else is_null

    def _eval_ExistsExpr(self, expr: ast.ExistsExpr, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        result = len(rows) > 0
        return (not result) if expr.negated else result

    def _eval_ScalarSubquery(self, expr: ast.ScalarSubquery, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        return rows[0][0]

    def _eval_CastExpr(self, expr: ast.CastExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        ctype = ColumnType.parse(expr.target_type)
        return coerce(value, ctype, column="<cast>")

    def _subquery_rows(self, select: ast.SelectStatement, scope: Scope) -> list[tuple]:
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self._run_subquery(select, scope)


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"value {value!r} is not a boolean")


def _three_valued_and(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and not _truthy(left):
        return False
    right = right_thunk()
    if right is not None and not _truthy(right):
        return False
    if left is None or right is None:
        return None
    return True


def _three_valued_or(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and _truthy(left):
        return True
    right = right_thunk()
    if right is not None and _truthy(right):
        return True
    if left is None or right is None:
        return None
    return False


def _require_number(value: Any, context: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{context} requires a numeric operand, got {value!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    _require_number(left, f"operator {op}")
    _require_number(right, f"operator {op}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # SQL integer division truncates toward zero
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _compare(op: str, left: Any, right: Any) -> bool:
    # numeric cross-type comparison is fine; bool participates as int in SQL-ish way
    if isinstance(left, bool) and isinstance(right, bool):
        pass
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        # mismatched types: only equality/inequality are defined (always unequal)
        if op == "=":
            return False
        if op == "<>":
            return True
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison {op}")


def _to_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# --------------------------------------------------------------------------
# predicate compilation
# --------------------------------------------------------------------------

#: a compiled accessor/evaluator: called with the caller-defined row
#: context (joined-row parts, a plain row dict, ...) and returns a value
CompiledFn = Callable[[Any], Any]

#: resolves one column reference to an accessor at compile time; raises
#: :class:`CannotCompile` when the name might belong to an outer scope
ColumnResolver = Callable[[ast.ColumnRef], CompiledFn]


class CannotCompile(Exception):
    """The expression needs the interpreter (subquery, aggregate, outer
    scope). Internal control flow of :func:`compile_predicate`."""


#: compiled node: (is_const, constant_value, runtime_fn) — exactly one of
#: the last two is meaningful
_Compiled = "tuple[bool, Any, CompiledFn | None]"


def _const(value: Any):
    return (True, value, None)


def _thunk(fn: CompiledFn):
    return (False, None, fn)


def _as_fn(node) -> CompiledFn:
    is_const, value, fn = node
    if is_const:
        return lambda ctx, value=value: value
    return fn


def _raiser(exc: Exception) -> CompiledFn:
    def fn(ctx, exc=exc):
        raise exc

    return fn


def _fold(operands: list, compute: Callable[..., Any]):
    """Combine compiled operands through a pure, eager ``compute``.

    All-constant operands evaluate once at compile time; an evaluation
    error is *deferred* into a raising closure rather than raised here, so
    a folded constant that the interpreter would only have evaluated
    per-row (e.g. ``1/0`` behind a short-circuiting AND) still errors at
    the same moment it would have interpreted. Only valid for operators
    the interpreter evaluates eagerly — AND/OR/CASE build their own lazy
    closures.
    """
    if all(node[0] for node in operands):
        values = [node[1] for node in operands]
        try:
            return _const(compute(*values))
        except MiniDBError as exc:
            return _thunk(_raiser(exc))
    fns = [_as_fn(node) for node in operands]
    if len(fns) == 1:
        f0 = fns[0]
        return _thunk(lambda ctx: compute(f0(ctx)))
    if len(fns) == 2:
        f0, f1 = fns
        return _thunk(lambda ctx: compute(f0(ctx), f1(ctx)))
    return _thunk(lambda ctx: compute(*[fn(ctx) for fn in fns]))


def compile_predicate(
    expr: ast.Expr, resolve: ColumnResolver
) -> CompiledFn | None:
    """Compile a WHERE/ON/HAVING-style predicate to ``fn(ctx) -> bool``.

    The returned closure applies the same NULL-counts-as-false rule as
    :meth:`Evaluator.evaluate_predicate`. Returns ``None`` when any part
    of the expression needs the interpreter; callers keep the AST around
    and fall back. ``resolve`` maps each column reference to a per-row
    accessor (or raises :class:`CannotCompile`); references that are
    statically unresolvable compile to closures raising the interpreter's
    exact error, preserving "no rows scanned, no error" behavior.
    """
    try:
        node = _compile(expr, resolve)
    except CannotCompile:
        return None
    if node[0]:
        result = node[1] is True
        return lambda ctx, result=result: result
    fn = node[2]
    return lambda ctx, fn=fn: fn(ctx) is True


def _compile(expr: ast.Expr, resolve: ColumnResolver):
    if isinstance(expr, ast.Literal):
        return _const(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return _thunk(resolve(expr))
    if isinstance(expr, ast.Star):
        return _thunk(
            _raiser(
                ExecutionError("'*' is only valid in a select list or COUNT(*)")
            )
        )
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, resolve)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolve)
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, resolve)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, resolve)
    if isinstance(expr, ast.InExpr):
        return _compile_in(expr, resolve)
    if isinstance(expr, ast.BetweenExpr):
        return _compile_between(expr, resolve)
    if isinstance(expr, ast.LikeExpr):
        return _compile_like(expr, resolve)
    if isinstance(expr, ast.IsNullExpr):
        negated = expr.negated

        def compute(value, negated=negated):
            is_null = value is None
            return (not is_null) if negated else is_null

        return _fold([_compile(expr.operand, resolve)], compute)
    if isinstance(expr, ast.CastExpr):
        try:
            ctype = ColumnType.parse(expr.target_type)
        except MiniDBError as exc:
            return _thunk(_raiser(exc))

        def compute(value, ctype=ctype):
            return coerce(value, ctype, column="<cast>")

        return _fold([_compile(expr.operand, resolve)], compute)
    # subqueries (ExistsExpr, ScalarSubquery, IN (SELECT ...)) and anything
    # unrecognized: the interpreter owns it
    raise CannotCompile


def _compile_unary(expr: ast.UnaryOp, resolve: ColumnResolver):
    op = expr.op
    if op == "NOT":

        def compute(value):
            if value is None:
                return None
            return not _truthy(value)

    elif op in ("-", "+"):
        negate = op == "-"

        def compute(value, negate=negate, op=op):
            if value is None:
                return None
            _require_number(value, f"unary {op}")
            return -value if negate else value

    else:
        raise CannotCompile
    return _fold([_compile(expr.operand, resolve)], compute)


def _compile_binary(expr: ast.BinaryOp, resolve: ColumnResolver):
    op = expr.op
    if op in ("AND", "OR"):
        left = _compile(expr.left, resolve)
        right = _compile(expr.right, resolve)
        lf, rf = _as_fn(left), _as_fn(right)
        if op == "AND":

            def fn(ctx):
                l = lf(ctx)
                if l is not None and not _truthy(l):
                    return False
                r = rf(ctx)
                if r is not None and not _truthy(r):
                    return False
                if l is None or r is None:
                    return None
                return True

        else:

            def fn(ctx):
                l = lf(ctx)
                if l is not None and _truthy(l):
                    return True
                r = rf(ctx)
                if r is not None and _truthy(r):
                    return True
                if l is None or r is None:
                    return None
                return False

        if left[0] and right[0]:
            try:
                return _const(fn(None))
            except MiniDBError as exc:
                return _thunk(_raiser(exc))
        return _thunk(fn)
    if op == "||":

        def compute(l, r):
            if l is None or r is None:
                return None
            return _to_text(l) + _to_text(r)

    elif op in ("+", "-", "*", "/", "%"):

        def compute(l, r, op=op):
            if l is None or r is None:
                return None
            return _arith(op, l, r)

    elif op in ("=", "<>", "<", "<=", ">", ">="):

        def compute(l, r, op=op):
            if l is None or r is None:
                return None
            return _compare(op, l, r)

    else:
        raise CannotCompile
    return _fold(
        [_compile(expr.left, resolve), _compile(expr.right, resolve)], compute
    )


def _compile_function(expr: ast.FunctionCall, resolve: ColumnResolver):
    if expr.name in AGGREGATE_NAMES:
        raise CannotCompile  # the interpreter raises the contextual error
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        return _thunk(_raiser(ExecutionError(f"unknown function {expr.name}()")))
    arg_fns = [_as_fn(_compile(a, resolve)) for a in expr.args]

    def call(ctx, fn=fn, arg_fns=arg_fns):
        return fn([f(ctx) for f in arg_fns])

    # never folded: keeps compile-time evaluation away from function
    # implementations (and their argument-validation errors)
    return _thunk(call)


def _compile_case(expr: ast.CaseExpr, resolve: ColumnResolver):
    # lazy like the interpreter: branches after the first match (and the
    # ELSE of a matched CASE) are never evaluated, errors included
    whens = [
        (_as_fn(_compile(when, resolve)), _as_fn(_compile(then, resolve)))
        for when, then in expr.whens
    ]
    default = (
        _as_fn(_compile(expr.default, resolve))
        if expr.default is not None
        else None
    )
    if expr.operand is not None:
        operand_fn = _as_fn(_compile(expr.operand, resolve))

        def fn(ctx):
            subject = operand_fn(ctx)
            for when_fn, then_fn in whens:
                candidate = when_fn(ctx)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare("=", subject, candidate) is True
                ):
                    return then_fn(ctx)
            return default(ctx) if default is not None else None

    else:

        def fn(ctx):
            for when_fn, then_fn in whens:
                if when_fn(ctx) is True:
                    return then_fn(ctx)
            return default(ctx) if default is not None else None

    return _thunk(fn)


def _compile_in(expr: ast.InExpr, resolve: ColumnResolver):
    if isinstance(expr.candidates, ast.SelectStatement):
        raise CannotCompile
    negated = expr.negated

    def compute(operand, *values, negated=negated):
        if operand is None:
            return None
        saw_null = False
        for value in values:
            if value is None:
                saw_null = True
                continue
            if _compare("=", operand, value) is True:
                return not negated
        if saw_null:
            return None
        return negated

    operands = [_compile(expr.operand, resolve)]
    operands.extend(_compile(c, resolve) for c in expr.candidates)
    return _fold(operands, compute)


def _compile_between(expr: ast.BetweenExpr, resolve: ColumnResolver):
    negated = expr.negated

    def compute(operand, low, high, negated=negated):
        if operand is None or low is None or high is None:
            return None
        result = (
            _compare(">=", operand, low) is True
            and _compare("<=", operand, high) is True
        )
        return (not result) if negated else result

    return _fold(
        [
            _compile(expr.operand, resolve),
            _compile(expr.low, resolve),
            _compile(expr.high, resolve),
        ],
        compute,
    )


def _compile_like(expr: ast.LikeExpr, resolve: ColumnResolver):
    negated = expr.negated
    case_insensitive = expr.case_insensitive
    operand = _compile(expr.operand, resolve)
    pattern = _compile(expr.pattern, resolve)
    if pattern[0] and pattern[1] is not None:
        # constant pattern (the overwhelmingly common case): compile the
        # regex once per statement instead of once per row
        regex = _like_regex(_to_text(pattern[1]), case_insensitive)

        def compute(value, regex=regex, negated=negated):
            if value is None:
                return None
            result = regex.match(_to_text(value)) is not None
            return (not result) if negated else result

        return _fold([operand], compute)

    def compute(value, pattern_value, negated=negated, ci=case_insensitive):
        if value is None or pattern_value is None:
            return None
        result = _like_match(_to_text(value), _to_text(pattern_value), ci)
        return (not result) if negated else result

    return _fold([operand, pattern], compute)


def _like_regex(pattern: str, case_insensitive: bool) -> "re.Pattern[str]":
    regex_parts = ["^"]
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    regex_parts.append("$")
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    return re.compile("".join(regex_parts), flags)


def _like_match(text: str, pattern: str, case_insensitive: bool) -> bool:
    return _like_regex(pattern, case_insensitive).match(text) is not None
