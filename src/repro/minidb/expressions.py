"""Expression evaluation with SQL three-valued logic.

The evaluator walks the AST produced by :mod:`repro.minidb.parser` against a
:class:`Row` scope (a mapping from column bindings to values). Aggregate
functions are *not* evaluated here — the executor rewrites aggregate calls
into pre-computed literals before projection; this module raises if it meets
one, which doubles as a safety net against mis-planned queries.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from . import ast_nodes as ast
from .errors import (
    DivisionByZeroError,
    ExecutionError,
    UnknownColumnError,
)
from .functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS
from .types import ColumnType, coerce

#: evaluator used for sub-SELECTs; injected by the executor to avoid an
#: import cycle (executor imports expressions).
SubqueryRunner = Callable[[ast.SelectStatement, "Scope"], list[tuple]]


class Scope:
    """Name-resolution scope for one row, with optional outer scope.

    ``bindings`` maps *qualified* names (``alias.column``) and unqualified
    column names to values. Ambiguous unqualified names raise.
    """

    __slots__ = ("qualified", "unqualified", "ambiguous", "outer")

    def __init__(
        self,
        qualified: Mapping[str, Any],
        unqualified: Mapping[str, Any],
        ambiguous: frozenset[str] = frozenset(),
        outer: "Scope | None" = None,
    ):
        self.qualified = qualified
        self.unqualified = unqualified
        self.ambiguous = ambiguous
        self.outer = outer

    def lookup(self, ref: ast.ColumnRef) -> Any:
        if ref.table:
            key = f"{ref.table.lower()}.{ref.name.lower()}"
            if key in self.qualified:
                return self.qualified[key]
        else:
            name = ref.name.lower()
            if name in self.ambiguous:
                raise UnknownColumnError(f"column reference {ref.name!r} is ambiguous")
            if name in self.unqualified:
                return self.unqualified[name]
        if self.outer is not None:
            return self.outer.lookup(ref)
        raise UnknownColumnError(f"column {ref} does not exist")


class Evaluator:
    """Evaluates expressions against a scope; one instance per query."""

    def __init__(self, run_subquery: SubqueryRunner | None = None):
        self._run_subquery = run_subquery

    # ------------------------------------------------------------------ API

    def evaluate(self, expr: ast.Expr, scope: Scope) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, scope)

    def evaluate_predicate(self, expr: ast.Expr, scope: Scope) -> bool:
        """Evaluate a WHERE/HAVING condition; NULL counts as false."""
        value = self.evaluate(expr, scope)
        return value is True

    # ------------------------------------------------------------ dispatch

    def _eval_Literal(self, expr: ast.Literal, scope: Scope) -> Any:
        return expr.value

    def _eval_ColumnRef(self, expr: ast.ColumnRef, scope: Scope) -> Any:
        return scope.lookup(expr)

    def _eval_Star(self, expr: ast.Star, scope: Scope) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    def _eval_UnaryOp(self, expr: ast.UnaryOp, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        if expr.op == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if expr.op == "-":
            _require_number(value, "unary -")
            return -value
        if expr.op == "+":
            _require_number(value, "unary +")
            return value
        raise ExecutionError(f"unknown unary operator {expr.op}")

    def _eval_BinaryOp(self, expr: ast.BinaryOp, scope: Scope) -> Any:
        op = expr.op
        if op == "AND":
            return _three_valued_and(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        if op == "OR":
            return _three_valued_or(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if left is None or right is None:
            return None
        if op == "||":
            return _to_text(left) + _to_text(right)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        raise ExecutionError(f"unknown binary operator {op}")

    def _eval_FunctionCall(self, expr: ast.FunctionCall, scope: Scope) -> Any:
        name = expr.name
        if name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate function {name}() is not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {name}()")
        args = [self.evaluate(a, scope) for a in expr.args]
        return fn(args)

    def _eval_CaseExpr(self, expr: ast.CaseExpr, scope: Scope) -> Any:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, scope)
            for when, then in expr.whens:
                candidate = self.evaluate(when, scope)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare("=", subject, candidate) is True
                ):
                    return self.evaluate(then, scope)
        else:
            for when, then in expr.whens:
                if self.evaluate(when, scope) is True:
                    return self.evaluate(then, scope)
        if expr.default is not None:
            return self.evaluate(expr.default, scope)
        return None

    def _eval_InExpr(self, expr: ast.InExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        if isinstance(expr.candidates, ast.SelectStatement):
            rows = self._subquery_rows(expr.candidates, scope)
            values = [row[0] for row in rows]
        else:
            values = [self.evaluate(c, scope) for c in expr.candidates]
        if operand is None:
            return None
        saw_null = False
        for value in values:
            if value is None:
                saw_null = True
                continue
            if _compare("=", operand, value) is True:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_BetweenExpr(self, expr: ast.BetweenExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        low = self.evaluate(expr.low, scope)
        high = self.evaluate(expr.high, scope)
        if operand is None or low is None or high is None:
            return None
        result = (
            _compare(">=", operand, low) is True
            and _compare("<=", operand, high) is True
        )
        return (not result) if expr.negated else result

    def _eval_LikeExpr(self, expr: ast.LikeExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        pattern = self.evaluate(expr.pattern, scope)
        if operand is None or pattern is None:
            return None
        text = _to_text(operand)
        result = _like_match(text, _to_text(pattern), expr.case_insensitive)
        return (not result) if expr.negated else result

    def _eval_IsNullExpr(self, expr: ast.IsNullExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        is_null = value is None
        return (not is_null) if expr.negated else is_null

    def _eval_ExistsExpr(self, expr: ast.ExistsExpr, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        result = len(rows) > 0
        return (not result) if expr.negated else result

    def _eval_ScalarSubquery(self, expr: ast.ScalarSubquery, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        return rows[0][0]

    def _eval_CastExpr(self, expr: ast.CastExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        ctype = ColumnType.parse(expr.target_type)
        return coerce(value, ctype, column="<cast>")

    def _subquery_rows(self, select: ast.SelectStatement, scope: Scope) -> list[tuple]:
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self._run_subquery(select, scope)


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"value {value!r} is not a boolean")


def _three_valued_and(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and not _truthy(left):
        return False
    right = right_thunk()
    if right is not None and not _truthy(right):
        return False
    if left is None or right is None:
        return None
    return True


def _three_valued_or(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and _truthy(left):
        return True
    right = right_thunk()
    if right is not None and _truthy(right):
        return True
    if left is None or right is None:
        return None
    return False


def _require_number(value: Any, context: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{context} requires a numeric operand, got {value!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    _require_number(left, f"operator {op}")
    _require_number(right, f"operator {op}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # SQL integer division truncates toward zero
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _compare(op: str, left: Any, right: Any) -> bool:
    # numeric cross-type comparison is fine; bool participates as int in SQL-ish way
    if isinstance(left, bool) and isinstance(right, bool):
        pass
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        # mismatched types: only equality/inequality are defined (always unequal)
        if op == "=":
            return False
        if op == "<>":
            return True
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison {op}")


def _to_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _like_match(text: str, pattern: str, case_insensitive: bool) -> bool:
    regex_parts = ["^"]
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    regex_parts.append("$")
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    return re.match("".join(regex_parts), text, flags) is not None
