"""Expression evaluation with SQL three-valued logic.

Two evaluation strategies live here:

* The :class:`Evaluator` walks the AST produced by
  :mod:`repro.minidb.parser` against a :class:`Row` scope (a mapping from
  column bindings to values) — the general path, required for subqueries
  and outer-scope (correlated) references.
* :func:`compile_predicate` compiles an expression tree *once per
  statement* into a chain of Python closures — constants folded, AND/OR
  short-circuited, LIKE patterns pre-compiled to regexes, and column
  references resolved at compile time to direct slot reads — so per-row
  evaluation skips the AST walk, the method dispatch, and the per-lookup
  name formatting entirely. Expressions the compiler cannot handle
  (subqueries, aggregates, names that may resolve to an outer scope)
  return ``None`` and the caller falls back to the interpreter; both
  paths share the same arithmetic/comparison kernels, so results and
  errors are identical.
* :func:`compile_batch_expr` / :func:`compile_batch_predicate` lift the
  compiled closure chain to whole column batches
  (:class:`repro.minidb.batch.RowBatch`): each compiled node maps a batch
  to a list of per-row values, wrapping the *same* scalar kernels in
  element-wise loops so one Python-level dispatch covers ~batch_size
  rows. Because SQL short-circuiting means a row-at-a-time plan may
  never evaluate an erroring operand for a given row, batch kernels
  never raise eagerly: an element that errors becomes a
  :class:`repro.minidb.batch.BatchError` sentinel that AND/OR/CASE
  kernels discard for short-circuited elements and that consumers raise
  only when the element's value is actually needed — the deferred-error
  contract shared with :func:`_fold`'s constant folding. Anything the
  row compiler punts on (:class:`CannotCompile`) the batch compiler
  punts on identically.

Aggregate functions are *not* evaluated here — the executor rewrites
aggregate calls into pre-computed literals before projection; this module
raises if it meets one, which doubles as a safety net against mis-planned
queries.
"""

from __future__ import annotations

import re
from itertools import repeat
from typing import Any, Callable, Mapping

from . import ast_nodes as ast
from .batch import BatchError, RowBatch
from .errors import (
    DivisionByZeroError,
    ExecutionError,
    MiniDBError,
    UnknownColumnError,
)
from .functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS
from .types import ColumnType, coerce

#: evaluator used for sub-SELECTs; injected by the executor to avoid an
#: import cycle (executor imports expressions).
SubqueryRunner = Callable[[ast.SelectStatement, "Scope"], list[tuple]]


class Scope:
    """Name-resolution scope for one row, with optional outer scope.

    ``bindings`` maps *qualified* names (``alias.column``) and unqualified
    column names to values. Ambiguous unqualified names raise.
    """

    __slots__ = ("qualified", "unqualified", "ambiguous", "outer")

    def __init__(
        self,
        qualified: Mapping[str, Any],
        unqualified: Mapping[str, Any],
        ambiguous: frozenset[str] = frozenset(),
        outer: "Scope | None" = None,
    ):
        self.qualified = qualified
        self.unqualified = unqualified
        self.ambiguous = ambiguous
        self.outer = outer

    def lookup(self, ref: ast.ColumnRef) -> Any:
        if ref.table:
            key = f"{ref.table.lower()}.{ref.name.lower()}"
            if key in self.qualified:
                return self.qualified[key]
        else:
            name = ref.name.lower()
            if name in self.ambiguous:
                raise UnknownColumnError(f"column reference {ref.name!r} is ambiguous")
            if name in self.unqualified:
                return self.unqualified[name]
        if self.outer is not None:
            return self.outer.lookup(ref)
        raise UnknownColumnError(f"column {ref} does not exist")


class Evaluator:
    """Evaluates expressions against a scope; one instance per query."""

    def __init__(self, run_subquery: SubqueryRunner | None = None):
        self._run_subquery = run_subquery

    # ------------------------------------------------------------------ API

    def evaluate(self, expr: ast.Expr, scope: Scope) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate {type(expr).__name__}")
        return method(expr, scope)

    def evaluate_predicate(self, expr: ast.Expr, scope: Scope) -> bool:
        """Evaluate a WHERE/HAVING condition; NULL counts as false."""
        value = self.evaluate(expr, scope)
        return value is True

    # ------------------------------------------------------------ dispatch

    def _eval_Literal(self, expr: ast.Literal, scope: Scope) -> Any:
        return expr.value

    def _eval_ColumnRef(self, expr: ast.ColumnRef, scope: Scope) -> Any:
        return scope.lookup(expr)

    def _eval_Star(self, expr: ast.Star, scope: Scope) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    def _eval_UnaryOp(self, expr: ast.UnaryOp, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        if expr.op == "NOT":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if expr.op == "-":
            _require_number(value, "unary -")
            return -value
        if expr.op == "+":
            _require_number(value, "unary +")
            return value
        raise ExecutionError(f"unknown unary operator {expr.op}")

    def _eval_BinaryOp(self, expr: ast.BinaryOp, scope: Scope) -> Any:
        op = expr.op
        if op == "AND":
            return _three_valued_and(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        if op == "OR":
            return _three_valued_or(
                lambda: self.evaluate(expr.left, scope),
                lambda: self.evaluate(expr.right, scope),
            )
        left = self.evaluate(expr.left, scope)
        right = self.evaluate(expr.right, scope)
        if left is None or right is None:
            return None
        if op == "||":
            return _to_text(left) + _to_text(right)
        if op in ("+", "-", "*", "/", "%"):
            return _arith(op, left, right)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        raise ExecutionError(f"unknown binary operator {op}")

    def _eval_FunctionCall(self, expr: ast.FunctionCall, scope: Scope) -> Any:
        name = expr.name
        if name in AGGREGATE_NAMES:
            raise ExecutionError(
                f"aggregate function {name}() is not allowed in this context"
            )
        fn = SCALAR_FUNCTIONS.get(name)
        if fn is None:
            raise ExecutionError(f"unknown function {name}()")
        args = [self.evaluate(a, scope) for a in expr.args]
        return fn(args)

    def _eval_CaseExpr(self, expr: ast.CaseExpr, scope: Scope) -> Any:
        if expr.operand is not None:
            subject = self.evaluate(expr.operand, scope)
            for when, then in expr.whens:
                candidate = self.evaluate(when, scope)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare("=", subject, candidate) is True
                ):
                    return self.evaluate(then, scope)
        else:
            for when, then in expr.whens:
                if self.evaluate(when, scope) is True:
                    return self.evaluate(then, scope)
        if expr.default is not None:
            return self.evaluate(expr.default, scope)
        return None

    def _eval_InExpr(self, expr: ast.InExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        if isinstance(expr.candidates, ast.SelectStatement):
            rows = self._subquery_rows(expr.candidates, scope)
            values = [row[0] for row in rows]
        else:
            values = [self.evaluate(c, scope) for c in expr.candidates]
        if operand is None:
            return None
        saw_null = False
        for value in values:
            if value is None:
                saw_null = True
                continue
            if _compare("=", operand, value) is True:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _eval_BetweenExpr(self, expr: ast.BetweenExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        low = self.evaluate(expr.low, scope)
        high = self.evaluate(expr.high, scope)
        if operand is None or low is None or high is None:
            return None
        result = (
            _compare(">=", operand, low) is True
            and _compare("<=", operand, high) is True
        )
        return (not result) if expr.negated else result

    def _eval_LikeExpr(self, expr: ast.LikeExpr, scope: Scope) -> Any:
        operand = self.evaluate(expr.operand, scope)
        pattern = self.evaluate(expr.pattern, scope)
        if operand is None or pattern is None:
            return None
        text = _to_text(operand)
        result = _like_match(text, _to_text(pattern), expr.case_insensitive)
        return (not result) if expr.negated else result

    def _eval_IsNullExpr(self, expr: ast.IsNullExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        is_null = value is None
        return (not is_null) if expr.negated else is_null

    def _eval_ExistsExpr(self, expr: ast.ExistsExpr, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        result = len(rows) > 0
        return (not result) if expr.negated else result

    def _eval_ScalarSubquery(self, expr: ast.ScalarSubquery, scope: Scope) -> Any:
        rows = self._subquery_rows(expr.subquery, scope)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return exactly one column")
        return rows[0][0]

    def _eval_CastExpr(self, expr: ast.CastExpr, scope: Scope) -> Any:
        value = self.evaluate(expr.operand, scope)
        ctype = ColumnType.parse(expr.target_type)
        return coerce(value, ctype, column="<cast>")

    def _subquery_rows(self, select: ast.SelectStatement, scope: Scope) -> list[tuple]:
        if self._run_subquery is None:
            raise ExecutionError("subqueries are not supported in this context")
        return self._run_subquery(select, scope)


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"value {value!r} is not a boolean")


def _three_valued_and(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and not _truthy(left):
        return False
    right = right_thunk()
    if right is not None and not _truthy(right):
        return False
    if left is None or right is None:
        return None
    return True


def _three_valued_or(left_thunk, right_thunk) -> bool | None:
    left = left_thunk()
    if left is not None and _truthy(left):
        return True
    right = right_thunk()
    if right is not None and _truthy(right):
        return True
    if left is None or right is None:
        return None
    return False


def _require_number(value: Any, context: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExecutionError(f"{context} requires a numeric operand, got {value!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    _require_number(left, f"operator {op}")
    _require_number(right, f"operator {op}")
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        if isinstance(left, int) and isinstance(right, int):
            # SQL integer division truncates toward zero
            return int(left / right)
        return left / right
    if op == "%":
        if right == 0:
            raise DivisionByZeroError("division by zero")
        return left % right
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _compare(op: str, left: Any, right: Any) -> bool:
    # numeric cross-type comparison is fine; bool participates as int in SQL-ish way
    if isinstance(left, bool) and isinstance(right, bool):
        pass
    elif isinstance(left, (int, float)) and isinstance(right, (int, float)):
        pass
    elif isinstance(left, str) and isinstance(right, str):
        pass
    else:
        # mismatched types: only equality/inequality are defined (always unequal)
        if op == "=":
            return False
        if op == "<>":
            return True
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison {op}")


def _to_text(value: Any) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


# --------------------------------------------------------------------------
# predicate compilation
# --------------------------------------------------------------------------

#: a compiled accessor/evaluator: called with the caller-defined row
#: context (joined-row parts, a plain row dict, ...) and returns a value
CompiledFn = Callable[[Any], Any]

#: resolves one column reference to an accessor at compile time; raises
#: :class:`CannotCompile` when the name might belong to an outer scope
ColumnResolver = Callable[[ast.ColumnRef], CompiledFn]


class CannotCompile(Exception):
    """The expression needs the interpreter (subquery, aggregate, outer
    scope). Internal control flow of :func:`compile_predicate`."""


#: compiled node: (is_const, constant_value, runtime_fn) — exactly one of
#: the last two is meaningful
_Compiled = "tuple[bool, Any, CompiledFn | None]"


def _const(value: Any):
    return (True, value, None)


def _thunk(fn: CompiledFn):
    return (False, None, fn)


def _as_fn(node) -> CompiledFn:
    is_const, value, fn = node
    if is_const:
        return lambda ctx, value=value: value
    return fn


def _raiser(exc: Exception) -> CompiledFn:
    def fn(ctx, exc=exc):
        raise exc

    return fn


def _fold(operands: list, compute: Callable[..., Any]):
    """Combine compiled operands through a pure, eager ``compute``.

    All-constant operands evaluate once at compile time; an evaluation
    error is *deferred* into a raising closure rather than raised here, so
    a folded constant that the interpreter would only have evaluated
    per-row (e.g. ``1/0`` behind a short-circuiting AND) still errors at
    the same moment it would have interpreted. Only valid for operators
    the interpreter evaluates eagerly — AND/OR/CASE build their own lazy
    closures.
    """
    if all(node[0] for node in operands):
        values = [node[1] for node in operands]
        try:
            return _const(compute(*values))
        except MiniDBError as exc:
            return _thunk(_raiser(exc))
    fns = [_as_fn(node) for node in operands]
    if len(fns) == 1:
        f0 = fns[0]
        return _thunk(lambda ctx: compute(f0(ctx)))
    if len(fns) == 2:
        f0, f1 = fns
        return _thunk(lambda ctx: compute(f0(ctx), f1(ctx)))
    return _thunk(lambda ctx: compute(*[fn(ctx) for fn in fns]))


def compile_predicate(
    expr: ast.Expr, resolve: ColumnResolver
) -> CompiledFn | None:
    """Compile a WHERE/ON/HAVING-style predicate to ``fn(ctx) -> bool``.

    The returned closure applies the same NULL-counts-as-false rule as
    :meth:`Evaluator.evaluate_predicate`. Returns ``None`` when any part
    of the expression needs the interpreter; callers keep the AST around
    and fall back. ``resolve`` maps each column reference to a per-row
    accessor (or raises :class:`CannotCompile`); references that are
    statically unresolvable compile to closures raising the interpreter's
    exact error, preserving "no rows scanned, no error" behavior.
    """
    try:
        node = _compile(expr, resolve)
    except CannotCompile:
        return None
    if node[0]:
        result = node[1] is True
        return lambda ctx, result=result: result
    fn = node[2]
    return lambda ctx, fn=fn: fn(ctx) is True


def _compile(expr: ast.Expr, resolve: ColumnResolver):
    if isinstance(expr, ast.Literal):
        return _const(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return _thunk(resolve(expr))
    if isinstance(expr, ast.Star):
        return _thunk(
            _raiser(
                ExecutionError("'*' is only valid in a select list or COUNT(*)")
            )
        )
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, resolve)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, resolve)
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, resolve)
    if isinstance(expr, ast.CaseExpr):
        return _compile_case(expr, resolve)
    if isinstance(expr, ast.InExpr):
        return _compile_in(expr, resolve)
    if isinstance(expr, ast.BetweenExpr):
        return _compile_between(expr, resolve)
    if isinstance(expr, ast.LikeExpr):
        return _compile_like(expr, resolve)
    if isinstance(expr, ast.IsNullExpr):
        return _fold(
            [_compile(expr.operand, resolve)], _is_null_compute(expr.negated)
        )
    if isinstance(expr, ast.CastExpr):
        try:
            ctype = ColumnType.parse(expr.target_type)
        except MiniDBError as exc:
            return _thunk(_raiser(exc))
        return _fold([_compile(expr.operand, resolve)], _cast_compute(ctype))
    # subqueries (ExistsExpr, ScalarSubquery, IN (SELECT ...)) and anything
    # unrecognized: the interpreter owns it
    raise CannotCompile


# -- shared per-element kernels: the row and batch compilers combine the
# -- same ``compute`` closures, so their results and errors are identical


def _unary_compute(op: str):
    if op == "NOT":

        def compute(value):
            if value is None:
                return None
            return not _truthy(value)

    elif op in ("-", "+"):
        negate = op == "-"

        def compute(value, negate=negate, op=op):
            if value is None:
                return None
            _require_number(value, f"unary {op}")
            return -value if negate else value

    else:
        raise CannotCompile
    return compute


def _binary_compute(op: str):
    """Eagerly-evaluated binary operators (AND/OR are lazy, not here)."""
    if op == "||":

        def compute(l, r):
            if l is None or r is None:
                return None
            return _to_text(l) + _to_text(r)

    elif op in ("+", "-", "*", "/", "%"):

        def compute(l, r, op=op):
            if l is None or r is None:
                return None
            return _arith(op, l, r)

    elif op in ("=", "<>", "<", "<=", ">", ">="):

        def compute(l, r, op=op):
            if l is None or r is None:
                return None
            return _compare(op, l, r)

    else:
        raise CannotCompile
    return compute


def _is_null_compute(negated: bool):
    def compute(value, negated=negated):
        is_null = value is None
        return (not is_null) if negated else is_null

    return compute


def _cast_compute(ctype: ColumnType):
    def compute(value, ctype=ctype):
        return coerce(value, ctype, column="<cast>")

    return compute


def _in_compute(negated: bool):
    def compute(operand, *values, negated=negated):
        if operand is None:
            return None
        saw_null = False
        for value in values:
            if value is None:
                saw_null = True
                continue
            if _compare("=", operand, value) is True:
                return not negated
        if saw_null:
            return None
        return negated

    return compute


def _between_compute(negated: bool):
    def compute(operand, low, high, negated=negated):
        if operand is None or low is None or high is None:
            return None
        result = (
            _compare(">=", operand, low) is True
            and _compare("<=", operand, high) is True
        )
        return (not result) if negated else result

    return compute


def _like_const_compute(regex: "re.Pattern[str]", negated: bool):
    def compute(value, regex=regex, negated=negated):
        if value is None:
            return None
        result = regex.match(_to_text(value)) is not None
        return (not result) if negated else result

    return compute


def _like_dynamic_compute(negated: bool, case_insensitive: bool):
    def compute(value, pattern_value, negated=negated, ci=case_insensitive):
        if value is None or pattern_value is None:
            return None
        result = _like_match(_to_text(value), _to_text(pattern_value), ci)
        return (not result) if negated else result

    return compute


def _compile_unary(expr: ast.UnaryOp, resolve: ColumnResolver):
    return _fold([_compile(expr.operand, resolve)], _unary_compute(expr.op))


def _compile_binary(expr: ast.BinaryOp, resolve: ColumnResolver):
    op = expr.op
    if op in ("AND", "OR"):
        left = _compile(expr.left, resolve)
        right = _compile(expr.right, resolve)
        lf, rf = _as_fn(left), _as_fn(right)
        if op == "AND":

            def fn(ctx):
                l = lf(ctx)
                if l is not None and not _truthy(l):
                    return False
                r = rf(ctx)
                if r is not None and not _truthy(r):
                    return False
                if l is None or r is None:
                    return None
                return True

        else:

            def fn(ctx):
                l = lf(ctx)
                if l is not None and _truthy(l):
                    return True
                r = rf(ctx)
                if r is not None and _truthy(r):
                    return True
                if l is None or r is None:
                    return None
                return False

        if left[0] and right[0]:
            try:
                return _const(fn(None))
            except MiniDBError as exc:
                return _thunk(_raiser(exc))
        return _thunk(fn)
    return _fold(
        [_compile(expr.left, resolve), _compile(expr.right, resolve)],
        _binary_compute(op),
    )


def _compile_function(expr: ast.FunctionCall, resolve: ColumnResolver):
    if expr.name in AGGREGATE_NAMES:
        raise CannotCompile  # the interpreter raises the contextual error
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        return _thunk(_raiser(ExecutionError(f"unknown function {expr.name}()")))
    arg_fns = [_as_fn(_compile(a, resolve)) for a in expr.args]

    def call(ctx, fn=fn, arg_fns=arg_fns):
        return fn([f(ctx) for f in arg_fns])

    # never folded: keeps compile-time evaluation away from function
    # implementations (and their argument-validation errors)
    return _thunk(call)


def _compile_case(expr: ast.CaseExpr, resolve: ColumnResolver):
    # lazy like the interpreter: branches after the first match (and the
    # ELSE of a matched CASE) are never evaluated, errors included
    whens = [
        (_as_fn(_compile(when, resolve)), _as_fn(_compile(then, resolve)))
        for when, then in expr.whens
    ]
    default = (
        _as_fn(_compile(expr.default, resolve))
        if expr.default is not None
        else None
    )
    if expr.operand is not None:
        operand_fn = _as_fn(_compile(expr.operand, resolve))

        def fn(ctx):
            subject = operand_fn(ctx)
            for when_fn, then_fn in whens:
                candidate = when_fn(ctx)
                if (
                    subject is not None
                    and candidate is not None
                    and _compare("=", subject, candidate) is True
                ):
                    return then_fn(ctx)
            return default(ctx) if default is not None else None

    else:

        def fn(ctx):
            for when_fn, then_fn in whens:
                if when_fn(ctx) is True:
                    return then_fn(ctx)
            return default(ctx) if default is not None else None

    return _thunk(fn)


def _compile_in(expr: ast.InExpr, resolve: ColumnResolver):
    if isinstance(expr.candidates, ast.SelectStatement):
        raise CannotCompile
    operands = [_compile(expr.operand, resolve)]
    operands.extend(_compile(c, resolve) for c in expr.candidates)
    return _fold(operands, _in_compute(expr.negated))


def _compile_between(expr: ast.BetweenExpr, resolve: ColumnResolver):
    return _fold(
        [
            _compile(expr.operand, resolve),
            _compile(expr.low, resolve),
            _compile(expr.high, resolve),
        ],
        _between_compute(expr.negated),
    )


def _compile_like(expr: ast.LikeExpr, resolve: ColumnResolver):
    operand = _compile(expr.operand, resolve)
    pattern = _compile(expr.pattern, resolve)
    if pattern[0] and pattern[1] is not None:
        # constant pattern (the overwhelmingly common case): compile the
        # regex once per statement instead of once per row
        regex = _like_regex(_to_text(pattern[1]), expr.case_insensitive)
        return _fold([operand], _like_const_compute(regex, expr.negated))
    return _fold(
        [operand, pattern],
        _like_dynamic_compute(expr.negated, expr.case_insensitive),
    )


def _like_regex(pattern: str, case_insensitive: bool) -> "re.Pattern[str]":
    regex_parts = ["^"]
    for ch in pattern:
        if ch == "%":
            regex_parts.append(".*")
        elif ch == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(ch))
    regex_parts.append("$")
    flags = re.IGNORECASE | re.DOTALL if case_insensitive else re.DOTALL
    return re.compile("".join(regex_parts), flags)


def _like_match(text: str, pattern: str, case_insensitive: bool) -> bool:
    return _like_regex(pattern, case_insensitive).match(text) is not None


# --------------------------------------------------------------------------
# batch (vectorized) compilation
# --------------------------------------------------------------------------

#: a compiled batch evaluator: maps a RowBatch to a list of ``length``
#: per-row values, each a plain value or a deferred :class:`BatchError`
BatchFn = Callable[[RowBatch], list]

#: resolves one column reference to a batch accessor (``fn(batch) ->
#: column list``) at compile time; raises :class:`CannotCompile` when the
#: name might belong to an outer scope
BatchColumnResolver = Callable[[ast.ColumnRef], BatchFn]

#: CASE kernels need "no branch matched" distinct from a matched branch
#: that produced None
_UNMATCHED = object()


def batch_raiser(exc: Exception) -> BatchFn:
    """A batch accessor whose every element is the deferred ``exc`` —
    the vectorized analogue of :func:`_raiser` (used for statically
    unresolvable column references, unknown functions, bad casts)."""
    err = BatchError(exc)

    def fn(batch, err=err):
        return [err] * batch.length

    return fn


def _as_batch_fn(node):
    """Node -> per-batch iterable producer (constants broadcast lazily)."""
    is_const, value, fn = node
    if is_const:
        return lambda batch, value=value: repeat(value, batch.length)
    return fn


def _as_batch_list_fn(node) -> BatchFn:
    """Node -> per-batch *list* producer (for kernels that index)."""
    is_const, value, fn = node
    if is_const:
        return lambda batch, value=value: [value] * batch.length
    return fn


def _deferred_const(exc: Exception):
    return _thunk(batch_raiser(exc))


def _fold_batch(operands: list, compute: Callable[..., Any]):
    """Vectorized :func:`_fold`: element-wise ``compute`` over operand
    vectors. All-constant operands still fold once at compile time; a
    per-element evaluation error is deferred into a :class:`BatchError`
    sentinel rather than raised — only :class:`MiniDBError` is deferred,
    exactly the hierarchy :func:`_fold` defers at compile time. An
    operand element that is already an error propagates (leftmost operand
    wins, matching the row path's left-to-right operand evaluation).
    """
    if all(node[0] for node in operands):
        values = [node[1] for node in operands]
        try:
            return _const(compute(*values))
        except MiniDBError as exc:
            return _deferred_const(exc)
    fns = [_as_batch_fn(node) for node in operands]
    if len(fns) == 1:
        f0 = fns[0]

        def fn1(batch, f0=f0, compute=compute):
            out = []
            append = out.append
            for v in f0(batch):
                if type(v) is BatchError:
                    append(v)
                    continue
                try:
                    append(compute(v))
                except MiniDBError as exc:
                    append(BatchError(exc))
            return out

        return _thunk(fn1)
    if len(fns) == 2:
        f0, f1 = fns

        def fn2(batch, f0=f0, f1=f1, compute=compute):
            out = []
            append = out.append
            for l, r in zip(f0(batch), f1(batch)):
                if type(l) is BatchError:
                    append(l)
                    continue
                if type(r) is BatchError:
                    append(r)
                    continue
                try:
                    append(compute(l, r))
                except MiniDBError as exc:
                    append(BatchError(exc))
            return out

        return _thunk(fn2)

    def fnN(batch, fns=fns, compute=compute):
        out = []
        append = out.append
        for args in zip(*[f(batch) for f in fns]):
            err = None
            for a in args:
                if type(a) is BatchError:
                    err = a
                    break
            if err is not None:
                append(err)
                continue
            try:
                append(compute(*args))
            except MiniDBError as exc:
                append(BatchError(exc))
        return out

    return _thunk(fnN)


def compile_batch_expr(
    expr: ast.Expr, resolve: BatchColumnResolver
) -> BatchFn | None:
    """Compile an expression to a batch evaluator, or ``None``.

    The returned ``fn(batch)`` yields one value per row; elements whose
    evaluation errored are :class:`BatchError` sentinels the caller must
    raise when (and only when) the element's value is consumed. Returns
    ``None`` exactly when :func:`compile_predicate` would (subqueries,
    aggregates, possibly-correlated names): callers fall back to per-row
    evaluation inside the batch.
    """
    try:
        node = _compile_batch(expr, resolve)
    except CannotCompile:
        return None
    return _as_batch_list_fn(node)


def compile_batch_predicate(
    expr: ast.Expr, resolve: BatchColumnResolver
) -> BatchFn | None:
    """Compile a WHERE-style predicate to a batch mask evaluator.

    Same contract as :func:`compile_batch_expr`; the caller applies the
    NULL-counts-as-false rule by keeping only elements that are ``True``
    (mirroring :func:`compile_predicate`'s ``is True`` wrapper, inlined
    into the consumer's selection loop) and raising the first
    :class:`BatchError` in row order — the moment the row-at-a-time
    filter would have raised it.
    """
    return compile_batch_expr(expr, resolve)


def _compile_batch(expr: ast.Expr, resolve: BatchColumnResolver):
    if isinstance(expr, ast.Literal):
        return _const(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return _thunk(resolve(expr))
    if isinstance(expr, ast.Star):
        return _deferred_const(
            ExecutionError("'*' is only valid in a select list or COUNT(*)")
        )
    if isinstance(expr, ast.UnaryOp):
        return _fold_batch(
            [_compile_batch(expr.operand, resolve)], _unary_compute(expr.op)
        )
    if isinstance(expr, ast.BinaryOp):
        return _compile_batch_binary(expr, resolve)
    if isinstance(expr, ast.FunctionCall):
        return _compile_batch_function(expr, resolve)
    if isinstance(expr, ast.CaseExpr):
        return _compile_batch_case(expr, resolve)
    if isinstance(expr, ast.InExpr):
        if isinstance(expr.candidates, ast.SelectStatement):
            raise CannotCompile
        operands = [_compile_batch(expr.operand, resolve)]
        operands.extend(_compile_batch(c, resolve) for c in expr.candidates)
        return _fold_batch(operands, _in_compute(expr.negated))
    if isinstance(expr, ast.BetweenExpr):
        return _fold_batch(
            [
                _compile_batch(expr.operand, resolve),
                _compile_batch(expr.low, resolve),
                _compile_batch(expr.high, resolve),
            ],
            _between_compute(expr.negated),
        )
    if isinstance(expr, ast.LikeExpr):
        return _compile_batch_like(expr, resolve)
    if isinstance(expr, ast.IsNullExpr):
        return _fold_batch(
            [_compile_batch(expr.operand, resolve)],
            _is_null_compute(expr.negated),
        )
    if isinstance(expr, ast.CastExpr):
        try:
            ctype = ColumnType.parse(expr.target_type)
        except MiniDBError as exc:
            return _deferred_const(exc)
        return _fold_batch(
            [_compile_batch(expr.operand, resolve)], _cast_compute(ctype)
        )
    # subqueries (ExistsExpr, ScalarSubquery, IN (SELECT ...)) and anything
    # unrecognized: the interpreter owns it — same bail set as _compile
    raise CannotCompile


def _compile_batch_binary(expr: ast.BinaryOp, resolve: BatchColumnResolver):
    op = expr.op
    if op in ("AND", "OR"):
        left = _compile_batch(expr.left, resolve)
        right = _compile_batch(expr.right, resolve)
        if left[0] and right[0]:
            lv, rv = left[1], right[1]
            combine = _three_valued_and if op == "AND" else _three_valued_or
            try:
                return _const(combine(lambda: lv, lambda: rv))
            except MiniDBError as exc:
                return _deferred_const(exc)
        lf, rf = _as_batch_fn(left), _as_batch_fn(right)
        kernel = _batch_and if op == "AND" else _batch_or
        return _thunk(kernel(lf, rf))
    return _fold_batch(
        [_compile_batch(expr.left, resolve), _compile_batch(expr.right, resolve)],
        _binary_compute(op),
    )


def _batch_and(lf, rf):
    """Vectorized 3VL AND with per-element short-circuit.

    The right operand vector is computed for the whole batch (kernels are
    pure, so that is unobservable), but its *errors* are discarded for
    elements the row-at-a-time AND would never have evaluated the right
    side for — the deferred-error contract that keeps batch plans from
    raising on rows a short-circuit would have skipped.
    """

    def fn(batch, lf=lf, rf=rf):
        out = []
        append = out.append
        for l, r in zip(lf(batch), rf(batch)):
            if l is False:
                append(False)
                continue
            if l is not True and l is not None:
                if type(l) is BatchError:
                    append(l)
                    continue
                try:
                    if not _truthy(l):
                        append(False)
                        continue
                except MiniDBError as exc:
                    append(BatchError(exc))
                    continue
            # left passed (True, truthy non-bool, or NULL): right decides
            if r is False:
                append(False)
                continue
            if r is not True and r is not None:
                if type(r) is BatchError:
                    append(r)
                    continue
                try:
                    if not _truthy(r):
                        append(False)
                        continue
                except MiniDBError as exc:
                    append(BatchError(exc))
                    continue
            append(True if (l is not None and r is not None) else None)
        return out

    return fn


def _batch_or(lf, rf):
    """Vectorized 3VL OR; see :func:`_batch_and` for the error contract."""

    def fn(batch, lf=lf, rf=rf):
        out = []
        append = out.append
        for l, r in zip(lf(batch), rf(batch)):
            if l is True:
                append(True)
                continue
            if l is not False and l is not None:
                if type(l) is BatchError:
                    append(l)
                    continue
                try:
                    if _truthy(l):
                        append(True)
                        continue
                except MiniDBError as exc:
                    append(BatchError(exc))
                    continue
            if r is True:
                append(True)
                continue
            if r is not False and r is not None:
                if type(r) is BatchError:
                    append(r)
                    continue
                try:
                    if _truthy(r):
                        append(True)
                        continue
                except MiniDBError as exc:
                    append(BatchError(exc))
                    continue
            append(False if (l is not None and r is not None) else None)
        return out

    return fn


def _compile_batch_function(expr: ast.FunctionCall, resolve: BatchColumnResolver):
    if expr.name in AGGREGATE_NAMES:
        raise CannotCompile  # the interpreter raises the contextual error
    fn = SCALAR_FUNCTIONS.get(expr.name)
    if fn is None:
        return _deferred_const(ExecutionError(f"unknown function {expr.name}()"))
    arg_fns = [_as_batch_list_fn(_compile_batch(a, resolve)) for a in expr.args]

    # never folded (matching _compile_function): the implementation is
    # still called once per row, in row order
    def call(batch, fn=fn, arg_fns=arg_fns):
        cols = [f(batch) for f in arg_fns]
        out = []
        append = out.append
        for i in range(batch.length):
            args = [col[i] for col in cols]
            err = None
            for a in args:
                if type(a) is BatchError:
                    err = a
                    break
            if err is not None:
                append(err)
                continue
            try:
                append(fn(args))
            except MiniDBError as exc:
                append(BatchError(exc))
        return out

    return _thunk(call)


def _compile_batch_case(expr: ast.CaseExpr, resolve: BatchColumnResolver):
    # the row path is lazy (branches after the first match are never
    # evaluated); the batch kernel evaluates every branch vector but
    # defers errors, then per element walks the branches in order and
    # discards whatever a lazy evaluation would not have touched
    whens = [
        (
            _as_batch_list_fn(_compile_batch(when, resolve)),
            _as_batch_list_fn(_compile_batch(then, resolve)),
        )
        for when, then in expr.whens
    ]
    default = (
        _as_batch_list_fn(_compile_batch(expr.default, resolve))
        if expr.default is not None
        else None
    )
    if expr.operand is not None:
        operand_fn = _as_batch_list_fn(_compile_batch(expr.operand, resolve))

        def fn(batch, operand_fn=operand_fn, whens=whens, default=default):
            subjects = operand_fn(batch)
            when_cols = [(wf(batch), tf(batch)) for wf, tf in whens]
            dflt = default(batch) if default is not None else None
            out = []
            append = out.append
            for i in range(batch.length):
                subject = subjects[i]
                if type(subject) is BatchError:
                    append(subject)
                    continue
                chosen = _UNMATCHED
                for wcol, tcol in when_cols:
                    candidate = wcol[i]
                    if type(candidate) is BatchError:
                        chosen = candidate
                        break
                    if subject is not None and candidate is not None:
                        try:
                            matched = _compare("=", subject, candidate) is True
                        except MiniDBError as exc:
                            chosen = BatchError(exc)
                            break
                        if matched:
                            chosen = tcol[i]
                            break
                if chosen is _UNMATCHED:
                    chosen = dflt[i] if dflt is not None else None
                append(chosen)
            return out

    else:

        def fn(batch, whens=whens, default=default):
            when_cols = [(wf(batch), tf(batch)) for wf, tf in whens]
            dflt = default(batch) if default is not None else None
            out = []
            append = out.append
            for i in range(batch.length):
                chosen = _UNMATCHED
                for wcol, tcol in when_cols:
                    when_value = wcol[i]
                    if type(when_value) is BatchError:
                        chosen = when_value
                        break
                    if when_value is True:
                        chosen = tcol[i]
                        break
                if chosen is _UNMATCHED:
                    chosen = dflt[i] if dflt is not None else None
                append(chosen)
            return out

    return _thunk(fn)


def _compile_batch_like(expr: ast.LikeExpr, resolve: BatchColumnResolver):
    operand = _compile_batch(expr.operand, resolve)
    pattern = _compile_batch(expr.pattern, resolve)
    if pattern[0] and pattern[1] is not None:
        # constant pattern: one regex per statement, shared by the batch
        regex = _like_regex(_to_text(pattern[1]), expr.case_insensitive)
        return _fold_batch([operand], _like_const_compute(regex, expr.negated))
    return _fold_batch(
        [operand, pattern],
        _like_dynamic_compute(expr.negated, expr.case_insensitive),
    )
