"""Observability tour: tracing, system views, EXPLAIN ANALYZE, metrics.

Lights up the PR-9 observability layer on an in-memory database, runs a
small workload, and then answers the operator questions the layer exists
for: what ran, what was slowest, where did the time go, and what do the
counters say.

Run with: ``PYTHONPATH=src python examples/observability.py``
"""

from repro.minidb import Database


def main() -> None:
    # 1. a database with tracing + a zero-threshold slow-query log --------
    db = Database(owner="admin")
    db.observability_options["tracing"] = True
    db.observability_options["slow_statement_s"] = 0.0
    session = db.connect("admin")

    session.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT, total FLOAT)"
    )
    session.execute("CREATE INDEX ix_orders_customer ON orders USING BTREE (customer)")
    for n in range(500):
        session.execute(
            f"INSERT INTO orders VALUES ({n}, 'customer{n % 40}', {n * 1.5})"
        )
    session.execute("SELECT total FROM orders WHERE id = 123")
    session.execute("SELECT id FROM orders WHERE customer = 'customer7'")
    session.execute("SELECT customer FROM orders ORDER BY total DESC LIMIT 5")

    # 2. the slowest statements, straight from SQL ------------------------
    print("--- system.statements: slowest queries ---")
    for sql, duration_ms, rows, path in session.execute(
        "SELECT sql, duration_ms, rows_returned, access_path "
        "FROM system.statements ORDER BY duration_ms DESC LIMIT 3"
    ).rows:
        print(f"{duration_ms:8.3f} ms  rows={rows:<4} {path or '-':<12} {sql[:60]}")
    print()

    # 3. where did the time go? EXPLAIN ANALYZE ---------------------------
    print("--- EXPLAIN ANALYZE ---")
    for (line,) in session.execute(
        "EXPLAIN ANALYZE SELECT id FROM orders WHERE customer = 'customer7'"
    ).rows:
        print(line)
    print()

    # 4. the slow-query log keeps SQL + span tree + plan ------------------
    entry = next(
        e for e in reversed(db.tracer.slow_statements()) if e["plan"]
    )
    print("--- slow-query log (latest entry) ---")
    print("sql: ", entry["sql"])
    print("plan:", entry["plan"])
    spans = [span["name"] for span in entry["trace"]["spans"]]
    print("spans:", " -> ".join(spans))
    print()

    # 5. counters and latency percentiles ---------------------------------
    print("--- system.metrics (selected) ---")
    for name, value in session.execute(
        "SELECT name, value FROM system.metrics "
        "WHERE name = 'minidb_statements_total' "
        "OR name = 'minidb_statement_seconds_p95' "
        "OR name = 'minidb_planner_index_scans_total'"
    ).rows:
        print(f"{name:<36} {value}")
    print()
    print("Prometheus exposition is db.metrics.render_text() — or run")
    print("`PYTHONPATH=src python -m repro.obs` for a self-contained demo.")


if __name__ == "__main__":
    main()
