"""Security walkthrough: privileges, policies, and rule-based interception.

Shows the paper's two-level security model (Sections 2.2-2.3):

* database-side privileges decide which SQL tools each user's agent even
  sees, and annotate the schema so the LLM knows its boundaries;
* user-side white/black-lists further hide sensitive objects and block
  dangerous actions (e.g. DROP), independent of database grants;
* object-level verification intercepts hallucinated/injected SQL before it
  reaches the engine.

Run with: ``python examples/security_policies.py``
"""

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding, SecurityPolicy
from repro.minidb import Database


def build_db() -> Database:
    db = Database(owner="dba")
    dba = db.connect("dba")
    dba.execute("CREATE TABLE orders (id INT PRIMARY KEY, total FLOAT)")
    dba.execute("CREATE TABLE customers (id INT PRIMARY KEY, email TEXT)")
    dba.execute("CREATE TABLE salaries (emp TEXT, pay FLOAT)")
    dba.execute("INSERT INTO orders VALUES (1, 10.0), (2, 99.0)")
    dba.execute("INSERT INTO customers VALUES (1, 'a@x.com')")
    dba.execute("INSERT INTO salaries VALUES ('alice', 9000.0)")
    db.create_user("analyst")
    dba.execute("GRANT SELECT ON orders TO analyst")
    dba.execute("GRANT SELECT (id) ON customers TO analyst")
    db.create_user("ops")
    dba.execute("GRANT ALL ON orders TO ops")
    dba.execute("GRANT ALL ON salaries TO ops")
    return db


def show(title: str, result) -> None:
    print(f"{title}\n  -> {result.render()}\n")


def main() -> None:
    db = build_db()

    print("=" * 70)
    print("1. Tool exposure follows database privileges")
    print("=" * 70)
    analyst = BridgeScope(MinidbBinding.for_user(db, "analyst"))
    ops = BridgeScope(MinidbBinding.for_user(db, "ops"))
    print(f"analyst (read-only) tools: {analyst.tool_names()}")
    print(f"ops (full CRUD) tools:     {ops.tool_names()}\n")

    print("=" * 70)
    print("2. Privilege annotations teach the LLM its boundaries")
    print("=" * 70)
    print(analyst.invoke("get_schema").content, "\n")

    print("=" * 70)
    print("3. Object-level verification intercepts violations")
    print("=" * 70)
    show(
        "analyst reads an authorized table",
        analyst.invoke("select", sql="SELECT COUNT(*) FROM orders"),
    )
    show(
        "analyst probes the salaries table (no grant)",
        analyst.invoke("select", sql="SELECT * FROM salaries"),
    )
    show(
        "analyst exceeds a column-level grant (email not granted)",
        analyst.invoke("select", sql="SELECT email FROM customers"),
    )
    show(
        "prompt-injected DELETE smuggled through the select tool",
        analyst.invoke("select", sql="DELETE FROM orders"),
    )

    print("=" * 70)
    print("4. User-side policies restrict the LLM within the user's rights")
    print("=" * 70)
    guarded = BridgeScope(
        MinidbBinding.for_user(db, "ops"),
        BridgeScopeConfig(
            policy=SecurityPolicy(
                object_blacklist=frozenset({"salaries"}),
                action_blacklist=frozenset({"DROP", "DELETE"}),
            )
        ),
    )
    print(f"ops-with-policy tools: {guarded.tool_names()}")
    print("(drop/delete tools are gone; salaries is invisible)\n")
    show(
        "policy hides salaries even though ops holds a grant",
        guarded.invoke("select", sql="SELECT * FROM salaries"),
    )
    show(
        "destructive DROP blocked by the action blacklist",
        guarded.invoke("create", sql="DROP TABLE orders"),
    )
    print("schema the guarded agent sees:")
    print(guarded.invoke("get_schema").content)
    print(
        f"\nverifier audit: {guarded.verifier.verified} verified, "
        f"{guarded.verifier.rejected} rejected"
    )


if __name__ == "__main__":
    main()
