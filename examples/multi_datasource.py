"""Multi-datasource agents: one toolkit vocabulary, many databases.

Section 2.6 of the paper: BridgeScope's database-agnostic design "enables
LLMs to interact with any data source using a consistent set of tools".
This example composes two independent databases — a sales warehouse and an
HR database — behind namespaced BridgeScope instances in a single agent
registry, and runs a proxy unit whose producers span both sources.

Run with: ``python examples/multi_datasource.py``
"""

from repro.core import BridgeScope, MinidbBinding, combine_bridges
from repro.minidb import Database
from repro.mltools import MLToolServer


def build_sales_db() -> Database:
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute(
        "CREATE TABLE revenue (month INT PRIMARY KEY, amount FLOAT)"
    )
    for month in range(1, 13):
        session.execute(
            f"INSERT INTO revenue VALUES ({month}, {100_000 + 7_000 * month})"
        )
    return db


def build_hr_db() -> Database:
    db = Database(owner="admin")
    session = db.connect("admin")
    session.execute(
        "CREATE TABLE payroll (month INT PRIMARY KEY, total FLOAT)"
    )
    for month in range(1, 13):
        session.execute(
            f"INSERT INTO payroll VALUES ({month}, {80_000 + 1_000 * month})"
        )
    return db


def main() -> None:
    sales = BridgeScope(
        MinidbBinding.for_user(build_sales_db(), "admin"), namespace="sales"
    )
    hr = BridgeScope(
        MinidbBinding.for_user(build_hr_db(), "admin"), namespace="hr"
    )
    registry = combine_bridges([sales, hr], extra_servers=[MLToolServer()])

    print("unified tool vocabulary across two databases:")
    for name in registry.tool_names():
        print(f"  {name}")

    print("\nschemas are retrieved per source:")
    print(registry.invoke("sales__get_schema").content.splitlines()[1])
    print(registry.invoke("hr__get_schema").content.splitlines()[1])

    # a cross-source proxy unit: revenue (sales db) and payroll (hr db)
    # flow directly into trend_analyze without touching the LLM
    print("\ncross-source margin trend via one proxy call:")
    result = registry.invoke(
        "sales__proxy",
        target_tool="trend_analyze",
        tool_args={
            "sales": {
                "__tool__": "sales__select",
                "__args__": {"sql": "SELECT amount FROM revenue ORDER BY month"},
            },
            "refunds": {
                "__tool__": "hr__select",
                "__args__": {"sql": "SELECT total FROM payroll ORDER BY month"},
            },
        },
    )
    trends = result.content
    print(f"  revenue trend: {trends['sales_trend']}")
    print(f"  payroll trend: {trends['refunds_trend']}")
    print(f"  payroll/revenue ratio: {trends['refund_rate']:.1%}")


if __name__ == "__main__":
    main()
