"""Quickstart: BridgeScope over minidb in ~60 lines.

Builds a tiny database, assembles the BridgeScope toolkit for a user, and
walks through the four functionality groups: context retrieval, SQL
execution, transactions, and proxy data routing.

Run with: ``python examples/quickstart.py``
"""

from repro.core import BridgeScope, BridgeScopeConfig, MinidbBinding
from repro.minidb import Database


def main() -> None:
    # 1. a database with two users ---------------------------------------
    db = Database(owner="admin")
    admin = db.connect("admin")
    admin.execute(
        "CREATE TABLE products (id INT PRIMARY KEY, name TEXT NOT NULL, "
        "price FLOAT CHECK (price >= 0))"
    )
    admin.execute(
        "INSERT INTO products VALUES (1, 'laptop', 1200.0), "
        "(2, 'mouse', 25.0), (3, 'monitor', 300.0)"
    )
    db.create_user("app")
    admin.execute("GRANT SELECT, INSERT, UPDATE ON products TO app")

    # 2. BridgeScope for the 'app' user -----------------------------------
    bridge = BridgeScope(MinidbBinding.for_user(db, "app"), BridgeScopeConfig())
    print("tools exposed to 'app':", ", ".join(bridge.tool_names()))
    print()

    # 3. context retrieval -------------------------------------------------
    print("--- get_schema ---")
    print(bridge.invoke("get_schema").render())
    print()
    print("--- get_value: discover how 'screen' products are stored ---")
    print(bridge.invoke("get_value", col="products.name", key="screen", k=2).render())
    print()

    # 4. SQL execution through fine-grained tools --------------------------
    print("--- select ---")
    print(bridge.invoke("select", sql="SELECT name, price FROM products").render())
    print()

    # DELETE is not exposed (no privilege) and even a smuggled DELETE via
    # the select tool is intercepted before reaching the database:
    blocked = bridge.invoke("select", sql="DELETE FROM products")
    print("smuggled DELETE ->", blocked.render())
    print()

    # 5. transactional write ------------------------------------------------
    print("--- transactional price update ---")
    print(bridge.invoke("begin").render())
    print(
        bridge.invoke(
            "update", sql="UPDATE products SET price = price * 1.1 WHERE id = 2"
        ).render()
    )
    print(bridge.invoke("commit").render())
    print("new price:", db.connect("admin").scalar("SELECT price FROM products WHERE id = 2"))
    print()

    # 6. proxy: route query results into another tool without the LLM ------
    result = bridge.invoke(
        "proxy",
        target_tool="select",
        tool_args={
            "sql": {
                "__tool__": "select",
                "__args__": {"sql": "SELECT 'SELECT COUNT(*) FROM products'"},
                "__transform__": "lambda rows: rows[0][0]",
            }
        },
    )
    print("--- proxy (nested select) ---")
    print(result.render())


if __name__ == "__main__":
    main()
