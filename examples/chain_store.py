"""The paper's chain-store scenario (Figures 1 and 3), end to end.

A Brand-A manager's daily workflow:

1. retrieve schema with privilege annotations (brand B is off limits);
2. atomically insert the day's sales and refunds inside a transaction;
3. analyze recent sales/refund trends by routing query results directly
   into the ``trend_analyze`` ML tool through a single proxy call —
   exactly the proxy unit shown in the paper's Figure 3.

Run with: ``python examples/chain_store.py``
"""

from repro.core import BridgeScope, MinidbBinding
from repro.minidb import Database
from repro.mltools import MLToolServer


def build_store() -> Database:
    db = Database(owner="dba")
    dba = db.connect("dba")
    dba.execute(
        "CREATE TABLE brand_a_items (id INT PRIMARY KEY, name TEXT, category TEXT)"
    )
    dba.execute(
        "CREATE TABLE brand_a_sales (order_id INT PRIMARY KEY, "
        "item_id INT REFERENCES brand_a_items(id), day INT, amount FLOAT)"
    )
    dba.execute(
        "CREATE TABLE brand_a_refunds (refund_id INT PRIMARY KEY, "
        "order_id INT REFERENCES brand_a_sales(order_id), day INT, amount FLOAT)"
    )
    dba.execute("CREATE TABLE brand_b_sales (order_id INT PRIMARY KEY, amount FLOAT)")
    dba.execute(
        "INSERT INTO brand_a_items VALUES (1, 'dress', 'women''s wear'), "
        "(2, 'boots', 'footwear')"
    )
    # ten days of history with a rising sales trend
    order = 1
    for day in range(1, 11):
        for _ in range(2):
            dba.execute(
                f"INSERT INTO brand_a_sales VALUES ({order}, 1, {day}, "
                f"{50.0 + 12.0 * day})"
            )
            order += 1
    dba.execute("INSERT INTO brand_a_refunds VALUES (1, 1, 2, 20.0), (2, 3, 4, 15.0)")

    db.create_user("brand_a_manager")
    for table in ("brand_a_items", "brand_a_sales", "brand_a_refunds"):
        dba.execute(f"GRANT ALL ON {table} TO brand_a_manager")
    return db


def main() -> None:
    db = build_store()
    bridge = BridgeScope(
        MinidbBinding.for_user(db, "brand_a_manager"),
        extra_servers=[MLToolServer()],
    )

    print("=== 1. schema with privilege annotations ===")
    schema = bridge.invoke("get_schema").content
    print(schema)
    assert "-- Access: False" in schema  # brand_b_sales is visible but locked

    print("\n=== 2. atomic insertion of today's records ===")
    print(bridge.invoke("begin").render())
    print(
        bridge.invoke(
            "insert",
            sql="INSERT INTO brand_a_sales VALUES (21, 1, 11, 190.0), "
            "(22, 2, 11, 185.0)",
        ).render()
    )
    print(
        bridge.invoke(
            "insert",
            sql="INSERT INTO brand_a_refunds VALUES (3, 21, 11, 30.0)",
        ).render()
    )
    print(bridge.invoke("commit").render())

    print("\n=== 3. trend analysis via one proxy call (paper Figure 3) ===")
    result = bridge.invoke(
        "proxy",
        target_tool="trend_analyze",
        tool_args={
            "sales": {
                "__tool__": "select",
                "__args__": {
                    "sql": "SELECT SUM(amount) FROM brand_a_sales "
                    "GROUP BY day ORDER BY day"
                },
                "__transform__": "lambda x: x",
            },
            "refunds": {
                "__tool__": "select",
                "__args__": {
                    "sql": "SELECT SUM(amount) FROM brand_a_refunds "
                    "GROUP BY day ORDER BY day"
                },
                "__transform__": "lambda x: x",
            },
        },
    )
    trends = result.content
    print(f"sales trend:   {trends['sales_trend']} (slope {trends['sales_slope']:.1f})")
    print(f"refunds trend: {trends['refunds_trend']}")
    print(f"refund rate:   {trends['refund_rate']:.1%}  alert={trends['alert']}")
    print(f"\nproxy stats: {bridge.proxy.stats}")


if __name__ == "__main__":
    main()
