"""NL2ML: end-to-end model training over a database through the proxy.

Demonstrates the data-intensive workflow of the paper's Section 3.4: a
20,000-row housing table is queried, normalized, used to train a price
model, and queried for predictions — with all bulk data routed tool-to-tool
by a single three-level proxy unit. The LLM-facing result is a few hundred
tokens instead of the ~750k tokens a context-routed transfer would cost.

Also runs the same task through a simulated agent to show the difference
between BridgeScope and PG-MCP measured in Table 2.

Run with: ``python examples/nl2ml_pipeline.py``
"""

from repro.bench.datasets import build_housing_database
from repro.bench.nl2ml import generate_nl2ml_tasks, idealized_pg_mcp_token_cost
from repro.bench.runner import run_ml_task
from repro.core import BridgeScope, MinidbBinding
from repro.llm import CLAUDE_4
from repro.mltools import MLToolServer


def main() -> None:
    print("building the 20,000-row housing database ...")
    db = build_housing_database(rows=20_000)
    bridge = BridgeScope(
        MinidbBinding.for_user(db, "admin"), extra_servers=[MLToolServer()]
    )

    print("\n=== three-level proxy unit: select -> normalize -> train -> predict ===")
    select_unit = {
        "__tool__": "select",
        "__args__": {
            "sql": "SELECT median_income, housing_median_age, households, "
            "median_house_value FROM house"
        },
    }
    normalize_unit = {"__tool__": "zscore_normalize", "__args__": {"data": select_unit}}
    train_unit = {"__tool__": "train_linear", "__args__": {"data": normalize_unit}}
    result = bridge.invoke(
        "proxy",
        target_tool="predict",
        tool_args={
            "model": train_unit,
            # already-normalized feature rows for three hypothetical districts
            "features": [[2.0, 0.5, 0.1], [-0.5, -1.0, 0.0], [0.0, 0.0, 0.0]],
        },
    )
    assert not result.is_error, result.content
    predictions = result.content["predictions"]
    metrics = result.content["model_metrics"]
    print(f"model metrics: rmse={metrics['rmse']:,.0f}  r2={metrics['r2']:.3f}")
    for index, value in enumerate(predictions):
        print(f"district {index + 1}: predicted median value ${value:,.0f}")
    stats = bridge.proxy.stats
    print(
        f"\nproxy routed {stats.values_routed:,} values across "
        f"{stats.producer_calls} producer calls at depth {stats.max_depth}, "
        "none of which entered an LLM context"
    )

    print("\n=== the same task through simulated agents (Table 2 mechanics) ===")
    task = generate_nl2ml_tasks(per_level=1)[2]  # a level-3 task
    for toolkit in ("bridgescope", "pg-mcp"):
        run = run_ml_task(task, toolkit, CLAUDE_4, db)
        status = (
            "completed"
            if run.trace.completed and not run.trace.aborted
            else f"FAILED ({run.trace.failure_reason})"
        )
        print(
            f"{toolkit:12s} -> {status:30s} "
            f"{run.trace.llm_calls} LLM calls, {run.trace.total_tokens:,} tokens"
        )

    ideal = idealized_pg_mcp_token_cost(db)
    print(
        f"\nidealized PG-MCP (unlimited context) would still spend "
        f">= {ideal:,} tokens just moving the table twice"
    )


if __name__ == "__main__":
    main()
