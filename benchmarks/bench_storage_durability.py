"""Storage-durability benchmark: warm reopen vs cold rebuild.

Builds a durable database directory with 100k rows, checkpoints it, and
persists the text column's value catalog; then measures reopening it
(snapshot load + WAL replay + persisted-catalog serve) against the seed's
only restart story — re-ingesting the data through the engine and
rebuilding the catalog from scratch (see
:mod:`repro.bench.storage_durability` for the measurement harness).

Usage::

    PYTHONPATH=src python benchmarks/bench_storage_durability.py           # full (100k)
    PYTHONPATH=src python benchmarks/bench_storage_durability.py --smoke   # CI-sized

Appends the measured result to ``BENCH_storage.json`` (override with
``--out``; runs accumulate in a ``history`` list) so the perf trajectory
is tracked across PRs. Exits non-zero
if the warm-reopen speedup is below the acceptance threshold (10x full,
2x smoke — at smoke sizes fixed per-open costs dominate), if the warm
path rebuilt anything despite the persisted catalog, or if the warm and
cold tool outputs differ.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import record_bench_result, render_storage_durability
from repro.bench.storage_durability import experiment_storage_durability

SPEEDUP_THRESHOLD = 10.0
SMOKE_THRESHOLD = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000,
                        help="rows in the benchmark table")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (10k rows, relaxed threshold)")
    parser.add_argument("--out", default="BENCH_storage.json",
                        help="where to write the JSON result")
    args = parser.parse_args(argv)

    rows = 10_000 if args.smoke else args.rows
    threshold = SMOKE_THRESHOLD if args.smoke else SPEEDUP_THRESHOLD

    result = experiment_storage_durability(rows=rows)
    print(render_storage_durability(result))

    passed = (
        result["equivalence_ok"]
        and result["zero_rebuild"]
        and result["speedup"] >= threshold
    )
    payload = dict(result, threshold=threshold, smoke=args.smoke, passed=passed)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not result["equivalence_ok"]:
        print("FAIL: warm-reopen and cold-rebuild tool outputs differ")
        return 1
    if not result["zero_rebuild"]:
        print("FAIL: warm reopen rebuilt the catalog instead of serving "
              "the persisted one")
        return 1
    if result["speedup"] < threshold:
        print(f"FAIL: speedup {result['speedup']:.1f}x is below "
              f"{threshold:.0f}x")
        return 1
    print(f"OK: speedup {result['speedup']:,.1f}x "
          f"(threshold {threshold:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
