"""Table 2 + Section 3.4(3): effectiveness of the proxy mechanism (NL2ML).

Paper results:
* PG-MCP completes no NL2ML task (context window exhausted routing the
  20,000-row house table through the LLM); BridgeScope and the 20-row
  PG-MCP-S variant complete everything.
* BridgeScope needs ~3.4 LLM calls; PG-MCP-S ~5.1 and more tokens.
* An idealized unlimited-context PG-MCP would still burn >= 2 orders of
  magnitude more tokens than BridgeScope on pure data transfer.
"""

from repro.bench.reporting import render_table2
from repro.bench.runner import experiment_table2


def test_table2_proxy_effectiveness(benchmark, housing_rows):
    result = benchmark.pedantic(
        experiment_table2,
        kwargs={"per_level": 10, "housing_rows": housing_rows},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table2(result))
    cells = result["cells"]
    for model in ("gpt-4o", "claude-4"):
        assert cells[(model, "bridgescope")]["completion_rate"] == 1.0
        assert cells[(model, "pg-mcp")]["completion_rate"] == 0.0
        assert cells[(model, "pg-mcp-s")]["completion_rate"] == 1.0
        assert cells[(model, "bridgescope")]["avg_llm_calls"] <= 4.0
        assert (
            cells[(model, "pg-mcp-s")]["avg_tokens"]
            > cells[(model, "bridgescope")]["avg_tokens"]
        )
    ratio = result["idealized_pg_mcp_tokens"] / result["bridgescope_avg_tokens"]
    assert ratio >= 100, f"expected >=2 orders of magnitude, got {ratio:.0f}x"
