"""Figure 6: average LLM calls across privilege roles (feasible and
infeasible BIRD-Ext tasks).

Paper result: with sufficient privileges the toolkits are comparable; for
infeasible tasks BridgeScope cuts LLM calls by 23-71% (strongest when a
read-only user attempts a write: the missing write tool is visible without
any tool call).
"""

from repro.bench.reporting import render_fig6
from repro.bench.runner import experiment_fig6_table1


def test_fig6_privilege_aware_calls(benchmark, bench_tasks, bench_scale):
    result = benchmark.pedantic(
        experiment_fig6_table1,
        kwargs={"n_tasks_per_cell": bench_tasks, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig6(result))
    for model, cells in result.items():
        for cell in ("(N, write)", "(I, read)", "(I, write)"):
            stats = cells[cell]
            reduction = 1 - stats["bridgescope"] / stats["pg-mcp"]
            assert reduction >= 0.2, (model, cell, reduction)
        # feasible tasks stay within the same small-call regime
        assert cells["(A, read)"]["bridgescope"] <= 4.5, model
