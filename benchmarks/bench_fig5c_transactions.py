"""Figure 5(c): transaction trigger ratio on BIRD-Ext write tasks.

Paper result: agents with explicit begin/commit/rollback tools initiate
transactions (near-)always; agents with only a generic execute_sql tool
rarely recognize the need.
"""

from repro.bench.reporting import render_fig5c
from repro.bench.runner import experiment_fig5c


def test_fig5c_transaction_management(benchmark, bench_tasks, bench_scale):
    result = benchmark.pedantic(
        experiment_fig5c,
        kwargs={"n_tasks": bench_tasks, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig5c(result))
    for model, row in result.items():
        assert row["bridgescope"] >= 0.9, model
        assert row["pg-mcp"] <= 0.3, model
