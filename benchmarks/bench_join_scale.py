"""Join-scale benchmark: hash join vs the seed's nested-loop join path.

Times an equi-join of two large tables under both join strategies (see
:mod:`repro.bench.join_scale` for the measurement harness). The hash-join
path runs at the full row count; the nested-loop baseline (the seed
executor's only strategy, reachable via
``db.planner_options["enable_hash_join"] = False``) is timed at a smaller
row count and extrapolated quadratically, because running it at 10k x 10k
rows would take hours — which is exactly the point.

Usage::

    PYTHONPATH=src python benchmarks/bench_join_scale.py            # full (10k rows)
    PYTHONPATH=src python benchmarks/bench_join_scale.py --smoke    # CI-sized

Appends the measured result to ``BENCH_joins.json`` (override with
``--out``; runs accumulate in a ``history`` list so the perf trajectory
is tracked across PRs). Exits non-zero if the speedup is below the 20x
acceptance threshold or if EXPLAIN stops reporting a hash join for the
benchmark query.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.join_scale import experiment_join_scale
from repro.bench.reporting import record_bench_result, render_join_scale

SPEEDUP_THRESHOLD = 20.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=10_000,
                        help="rows per table for the hash-join measurement")
    parser.add_argument("--nl-rows", type=int, default=1_000,
                        help="rows per table for the nested-loop baseline")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (500 rows, direct comparison)")
    parser.add_argument("--out", default="BENCH_joins.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    rows = 500 if args.smoke else args.rows
    nl_rows = 500 if args.smoke else args.nl_rows

    result = experiment_join_scale(rows=rows, nl_rows=nl_rows)
    print(render_join_scale(result))

    hash_planned = any("Hash Join" in line for line in result["plan"])
    payload = dict(result, threshold=SPEEDUP_THRESHOLD, smoke=args.smoke,
                   passed=hash_planned
                   and result["speedup"] >= SPEEDUP_THRESHOLD)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not hash_planned:
        print("FAIL: EXPLAIN does not report a hash join for the equi-join")
        return 1
    if result["speedup"] < SPEEDUP_THRESHOLD:
        print(f"FAIL: speedup {result['speedup']:.1f}x is below "
              f"{SPEEDUP_THRESHOLD:.0f}x")
        return 1
    print(f"OK: speedup {result['speedup']:,.1f}x "
          f"(threshold {SPEEDUP_THRESHOLD:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
