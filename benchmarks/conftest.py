"""Shared configuration for the reproduction benchmarks.

Environment knobs (all optional):

* ``REPRO_BENCH_TASKS`` — tasks per experiment cell (default 25)
* ``REPRO_BENCH_SCALE`` — database size scale factor (default 0.5)
* ``REPRO_BENCH_HOUSING_ROWS`` — rows in the NL2ML house table
  (default 20000, the paper's size)
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_tasks() -> int:
    return int(os.environ.get("REPRO_BENCH_TASKS", "25"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture(scope="session")
def housing_rows() -> int:
    return int(os.environ.get("REPRO_BENCH_HOUSING_ROWS", "20000"))
