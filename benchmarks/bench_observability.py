"""Observability benchmark: zero-cost-when-dark gate + feature sanity.

Runs :mod:`repro.bench.observability`:

* the statement hot path with every ``observability_options`` switch dark
  must cost at most a few percent over a build with no observability
  dispatch at all (the PR-9 zero-cost-when-dark contract, gated like the
  PR-7 seam overhead), and
* a lit-up feature probe (tracing + slow log + EXPLAIN ANALYZE + system
  views) whose surfaces must all be populated — the traced overhead is
  reported but not gated.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py           # full
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke   # CI

Appends the measured result to ``BENCH_obs.json`` (override with
``--out``; runs accumulate in a ``history`` list so the trajectory is
tracked across PRs). Exits non-zero if the dark-overhead gate or the
feature sanity checks fail.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.observability import (
    experiment_observability,
    measure_dark_overhead,
)
from repro.bench.reporting import record_bench_result, render_observability

DARK_OVERHEAD_PCT = 5.0
#: a one-shot timing burst must not fail CI: the overhead gate re-measures
#: (each measurement is already best-of-N) and takes the minimum
DARK_REMEASURES = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--statements", type=int, default=600,
                        help="point lookups per variant round")
    parser.add_argument("--rows", type=int, default=2_000,
                        help="rows in the benchmark table")
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved rounds per measurement")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller sizes)")
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = dict(statements=300, rows=1_000, repeats=4)
    else:
        sizes = dict(
            statements=args.statements, rows=args.rows, repeats=args.repeats
        )

    result = experiment_observability(**sizes)
    # the gate is a few-percent threshold on a noisy host: on a miss,
    # re-measure and keep the best reading before concluding the dark
    # dispatch itself (rather than a scheduler burst) costs too much
    attempts = 1
    while (
        result["overhead"]["dark_overhead_pct"] > DARK_OVERHEAD_PCT
        and attempts < DARK_REMEASURES
    ):
        attempts += 1
        remeasured = measure_dark_overhead(**sizes)
        if remeasured["dark_overhead_pct"] < result["overhead"]["dark_overhead_pct"]:
            result["overhead"] = remeasured
    result["overhead"]["measurements"] = attempts

    print(render_observability(result))

    overhead = result["overhead"]
    features = result["features"]
    features_ok = (
        features["system_statements_rows"] > 0
        and features["system_metrics_rows"] > 0
        and features["slow_entries"] > 0
        and features["explain_analyze_lines"] >= 3
        and features["spans_last_statement"] > 0
    )
    passed = overhead["dark_overhead_pct"] <= DARK_OVERHEAD_PCT and features_ok
    payload = dict(
        result,
        smoke=args.smoke,
        dark_threshold_pct=DARK_OVERHEAD_PCT,
        passed=passed,
    )
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not features_ok:
        print("FAIL: observability feature probe came back empty: "
              f"{features['system_statements_rows']} statement rows, "
              f"{features['system_metrics_rows']} metric rows, "
              f"{features['slow_entries']} slow entries, "
              f"{features['explain_analyze_lines']} EXPLAIN ANALYZE lines, "
              f"{features['spans_last_statement']} spans")
        return 1
    if overhead["dark_overhead_pct"] > DARK_OVERHEAD_PCT:
        print(f"FAIL: dark-mode overhead {overhead['dark_overhead_pct']:.2f}% "
              f"exceeds {DARK_OVERHEAD_PCT:.1f}% "
              f"(after {overhead['measurements']} measurements)")
        return 1
    print(f"OK: dark overhead {overhead['dark_overhead_pct']:+.2f}% "
          f"(threshold {DARK_OVERHEAD_PCT:.1f}%), traced "
          f"{overhead['traced_overhead_pct']:+.2f}%, feature probe populated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
