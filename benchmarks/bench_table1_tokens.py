"""Table 1: token usage for BIRD-Ext across privilege roles.

Paper result: similar costs when privileges suffice; 30-82% lower token
costs with BridgeScope when tasks are infeasible, because privilege
annotations and missing tools let the LLM abort before executing SQL.
"""

from repro.bench.reporting import render_table1
from repro.bench.runner import experiment_fig6_table1


def test_table1_token_usage(benchmark, bench_tasks, bench_scale):
    result = benchmark.pedantic(
        experiment_fig6_table1,
        kwargs={"n_tasks_per_cell": bench_tasks, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table1(result))
    for model, cells in result.items():
        for cell in ("(N, write)", "(I, read)", "(I, write)"):
            stats = cells[cell]
            saving = 1 - stats["bridgescope_tokens"] / stats["pg-mcp_tokens"]
            assert saving >= 0.2, (model, cell, saving)
        # the headline claim: savings reach ~80% somewhere
    best_saving = max(
        1 - cells[cell]["bridgescope_tokens"] / cells[cell]["pg-mcp_tokens"]
        for cells in result.values()
        for cell in ("(N, write)", "(I, read)", "(I, write)")
    )
    assert best_saving >= 0.6, best_saving
