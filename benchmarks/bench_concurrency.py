"""Concurrency benchmark: the multi-session service layer under load.

Runs the two workloads of :mod:`repro.bench.concurrency`:

* a read-heavy mixed workload (8 sessions, 8 workers, 8ms simulated
  downstream I/O per request) comparing the threaded dispatcher against
  serialized one-at-a-time execution, and
* a writer-contention workload (lost-update transactions on a shared
  counter over a durable database) that must commit every increment with
  every deadlock detected and retried.

Usage::

    PYTHONPATH=src python benchmarks/bench_concurrency.py           # full
    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke   # CI-sized

Appends the measured result to ``BENCH_concurrency.json`` (override with
``--out``; runs accumulate in a ``history`` list so the perf trajectory
is tracked across PRs). Exits non-zero if the threaded speedup is below
the acceptance threshold (3x full, 1.5x smoke — CI machines may have few
cores), if any update was lost, or if any session got stuck.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.concurrency import experiment_concurrency
from repro.bench.reporting import record_bench_result, render_concurrency

SPEEDUP_THRESHOLD = 3.0
SMOKE_THRESHOLD = 1.5


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=8,
                        help="read-heavy workload sessions")
    parser.add_argument("--workers", type=int, default=8,
                        help="dispatcher worker threads")
    parser.add_argument("--ops", type=int, default=40,
                        help="requests per session (read-heavy)")
    parser.add_argument("--rows", type=int, default=10_000,
                        help="rows in the customers table")
    parser.add_argument("--io-delay-ms", type=float, default=8.0,
                        help="simulated downstream I/O per request")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller sizes, relaxed threshold)")
    parser.add_argument("--out", default="BENCH_concurrency.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = dict(
            sessions=4, workers=4, ops_per_session=15, rows=2_000,
            io_delay_ms=args.io_delay_ms, writer_sessions=4,
            increments_per_session=8,
        )
        threshold = SMOKE_THRESHOLD
    else:
        sizes = dict(
            sessions=args.sessions, workers=args.workers,
            ops_per_session=args.ops, rows=args.rows,
            io_delay_ms=args.io_delay_ms,
        )
        threshold = SPEEDUP_THRESHOLD

    result = experiment_concurrency(**sizes)
    print(render_concurrency(result))

    read = result["read_heavy"]
    contention = result["writer_contention"]
    passed = (
        read["speedup"] >= threshold
        and read["errors"]["serial"] == 0
        and read["errors"]["threaded"] == 0
        and result["contention_ok"]
    )
    payload = dict(result, threshold=threshold, smoke=args.smoke, passed=passed)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if contention["lost_updates"] != 0:
        print(f"FAIL: {contention['lost_updates']} lost updates")
        return 1
    if contention["stuck_sessions"] != 0:
        print(f"FAIL: {contention['stuck_sessions']} sessions never finished")
        return 1
    if contention["final_value"] != contention["recovered_value"]:
        print("FAIL: recovery replayed to a different counter value "
              f"({contention['recovered_value']} != {contention['final_value']})")
        return 1
    if not result["contention_ok"]:
        print("FAIL: writer-contention workload did not complete cleanly")
        return 1
    if read["errors"]["serial"] or read["errors"]["threaded"]:
        print(f"FAIL: read-heavy workload had errors: {read['errors']}")
        return 1
    if read["speedup"] < threshold:
        print(f"FAIL: speedup {read['speedup']:.2f}x is below "
              f"{threshold:.1f}x")
        return 1
    print(f"OK: speedup {read['speedup']:,.2f}x (threshold {threshold:.1f}x), "
          "zero lost updates, zero stuck sessions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
