"""Ablation benchmarks beyond the paper's reported experiments.

* adaptive-schema threshold sweep — token cost of get_schema in full vs
  hierarchical mode as the object count crosses the threshold;
* verification on/off — overhead of object-level SQL verification;
* exemplar top-k sweep — retrieval quality of get_value as k grows;
* parallel vs serial proxy producers.
"""

import time

from repro.bench.datasets import build_bird_database
from repro.bench.reporting import render_table
from repro.core import (
    BridgeScope,
    BridgeScopeConfig,
    MinidbBinding,
    SqlVerifier,
    top_k,
)
from repro.llm.tokenizer import count_tokens
from repro.mcp import ToolRegistry
from repro.minidb import parse


def test_ablation_schema_threshold(benchmark):
    """Hierarchical get_schema saves tokens once databases grow."""
    db = build_bird_database(scale=1.0)

    def measure():
        rows = []
        for threshold in (0, 5, 10, 20, 50):
            bridge = BridgeScope(
                MinidbBinding.for_user(db, "admin"),
                BridgeScopeConfig(schema_detail_threshold=threshold),
            )
            output = bridge.invoke("get_schema").content
            rows.append(
                [threshold, bridge.context.schema_mode(), count_tokens(str(output))]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["threshold n", "mode", "get_schema tokens"],
            rows,
            title="Ablation — adaptive schema threshold",
        )
    )
    full_tokens = rows[-1][2]
    hierarchical_tokens = rows[0][2]
    assert hierarchical_tokens < full_tokens / 2


def test_ablation_verification_overhead(benchmark):
    """Object-level verification adds only microseconds per statement."""
    db = build_bird_database(scale=1.0)
    binding = MinidbBinding.for_user(db, "admin")
    verifier = SqlVerifier(binding, BridgeScopeConfig().policy)
    sql = (
        "SELECT c.school_name, AVG(s.avg_math) FROM schools c "
        "JOIN satscores s ON s.cds_code = c.cds_code "
        "WHERE c.enrollment > 500 GROUP BY c.school_name"
    )

    def verify_and_run():
        verifier.verify(sql, expected_action="SELECT")
        return binding.run_sql(sql)

    benchmark(verify_and_run)

    # report relative overhead out-of-band
    start = time.perf_counter()
    for _ in range(200):
        binding.run_sql(sql)
    run_only = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(200):
        verifier.verify(sql, expected_action="SELECT")
        binding.run_sql(sql)
    with_verify = time.perf_counter() - start
    overhead = with_verify / run_only - 1
    print(f"\nverification overhead: {overhead:+.1%} over bare execution")
    assert overhead < 1.0  # verification costs less than execution itself


def test_ablation_exemplar_top_k(benchmark):
    """Recall of the stored surface form as k grows."""
    values = [
        "women's wear", "men's wear", "children's wear", "sportswear",
        "accessories", "footwear", "outerwear", "swimwear", "formal wear",
        "activewear", "sleepwear", "underwear", "workwear", "knitwear",
    ]

    def sweep():
        rows = []
        for k in (1, 3, 5, 10):
            ranked = [v for v, _ in top_k("women", values, k)]
            rows.append([k, "women's wear" in ranked, ", ".join(ranked[:3])])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["k", "stored form found", "top-3"],
            rows,
            title="Ablation — get_value top-k recall for key 'women'",
        )
    )
    assert rows[0][1] is True  # top-1 already finds the stored form


def test_ablation_index_scans(benchmark):
    """Access-path planning: point lookups via index vs sequential scan."""
    from repro.minidb import Database

    db = Database(owner="a")
    session = db.connect("a")
    session.execute("CREATE TABLE big (id INT PRIMARY KEY, grp INT, v FLOAT)")
    heap = db.heap("big")
    for i in range(20_000):
        heap.insert({"id": i, "grp": i % 100, "v": float(i)})

    def point_lookup():
        return session.execute("SELECT v FROM big WHERE id = 19999").rows

    rows = benchmark(point_lookup)
    assert rows == [(19999.0,)]

    # out-of-band comparison vs a forced sequential scan
    import time

    start = time.perf_counter()
    for _ in range(50):
        session.execute("SELECT v FROM big WHERE id = 19999")
    indexed = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(50):
        session.execute("SELECT v FROM big WHERE id + 0 = 19999")  # defeats planner
    scanned = time.perf_counter() - start
    speedup = scanned / indexed
    print(f"\nindex point-lookup speedup over seq scan: {speedup:.0f}x")
    assert speedup > 5


def test_ablation_parallel_producers(benchmark):
    """Parallel producer execution yields the same results as serial."""
    db = build_bird_database(scale=1.0)

    def run(parallel: bool):
        bridge = BridgeScope(
            MinidbBinding.for_user(db, "admin"),
            BridgeScopeConfig(parallel_producers=parallel),
        )
        result = bridge.invoke(
            "proxy",
            target_tool="select",
            tool_args={
                "sql": {
                    "__tool__": "select",
                    "__args__": {"sql": "SELECT 'SELECT COUNT(*) FROM schools'"},
                    "__transform__": "lambda rows: rows[0][0]",
                }
            },
        )
        assert not result.is_error, result.content
        return result.metadata.get("rows")

    serial = run(False)
    parallel = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    assert serial == parallel
