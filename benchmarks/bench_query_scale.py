"""Query-scale benchmark: paged B-trees, cost-based planning, and index
unions vs the seed execution paths.

Times eight agent-shaped query classes at scale (see
:mod:`repro.bench.query_scale` for the measurement harness):

* a selective range filter through a ``USING BTREE`` index slice,
* ``ORDER BY ... LIMIT 10`` through the early-exit ordered index scan,
* a multi-conjunct sequential-scan WHERE through compiled predicates,
* a selective 10-member ``IN`` list through an index union scan,
* a wide low-selectivity filter through the column-batch pipeline,
* a full-table five-aggregate ``GROUP BY`` over column slices,
* incremental B-tree inserts vs the flat-sorted-array algorithm,
* a skewed conjunction where post-``ANALYZE`` cost-based planning beats
  the static preference order,

each against its forced baseline (``db.planner_options`` toggles, a
modelled flat array, or the statistics-free planner), with results
asserted byte-identical between the two plans.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_scale.py               # full (100k rows)
    PYTHONPATH=src python benchmarks/bench_query_scale.py --rows 1000000
    PYTHONPATH=src python benchmarks/bench_query_scale.py --smoke       # CI-sized

``REPRO_BENCH_ROWS`` overrides the default row count when ``--rows`` is
not given (both here and in ``python -m repro.bench query``).

Appends the measured result to ``BENCH_query.json`` (override with
``--out``; runs accumulate in a ``history`` list so the perf trajectory
is tracked across PRs, each entry recording its row count). Exits
non-zero if any speedup falls below its acceptance threshold, if the
fast plans stop appearing in EXPLAIN, or if either plan's rows diverge.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.query_scale import experiment_query_scale
from repro.bench.reporting import record_bench_result, render_query_scale

#: acceptance thresholds per query class (full-size run); smoke runs use
#: laxer floors since tiny tables leave little work to skip
THRESHOLDS = {
    "range": 20.0,
    "topn": 5.0,
    "predicate": 1.5,
    "union": 20.0,
    "batch_filter": 2.0,
    "batch_aggregate": 2.0,
    "btree_write": 4.0,
    "stats_skew": 5.0,
}
SMOKE_THRESHOLDS = {
    "range": 3.0,
    "topn": 1.5,
    "predicate": 1.1,
    "union": 3.0,
    "batch_filter": 1.1,
    "batch_aggregate": 1.1,
    "btree_write": 1.5,
    "stats_skew": 1.5,
}
#: at >= 1M rows the asymptotics dominate: the ISSUE gates tighten
LARGE_THRESHOLDS = dict(THRESHOLDS, btree_write=10.0)
LARGE_ROWS = 1_000_000


def default_rows() -> int:
    env = os.environ.get("REPRO_BENCH_ROWS")
    return int(env) if env else 100_000


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=None,
                        help="rows in the events table "
                             "(default: $REPRO_BENCH_ROWS or 100000)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (10k rows, relaxed thresholds)")
    parser.add_argument("--out", default="BENCH_query.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    rows = args.rows if args.rows is not None else default_rows()
    if args.smoke:
        rows = min(rows, 10_000)
        thresholds = SMOKE_THRESHOLDS
    elif rows >= LARGE_ROWS:
        thresholds = LARGE_THRESHOLDS
    else:
        thresholds = THRESHOLDS

    result = experiment_query_scale(rows=rows)
    print(render_query_scale(result))

    plans_ok = (
        any("Index Range Scan" in line for line in result["range"]["plan"])
        and any("Ordered Index Scan" in line for line in result["topn"]["plan"])
        and result["planner_stats"]["ordered_scans"] > 0
        and all("Seq Scan" in line for line in result["predicate"]["plan"])
        and any("Index Union Scan" in line for line in result["union"]["plan"])
        and result["planner_stats"]["union_scans"] > 0
        # the batch classes must actually plan (and execute) vectorized
        and any(
            "(batched)" in line for line in result["batch_filter"]["plan"]
        )
        and any(
            "(batched)" in line for line in result["batch_aggregate"]["plan"]
        )
        and result["planner_stats"]["batch_scans"] > 0
        # the regression pin for cost-based planning: statically the
        # skewed conjunct picks the 90%-heavy hash probe; with ANALYZE
        # statistics it must switch to the selective range slice
        and any(
            "Index Scan using ix_events_hot" in line
            for line in result["stats_skew"]["static_plan"]
        )
        and any(
            "Index Range Scan using ix_events_val" in line
            for line in result["stats_skew"]["plan"]
        )
        and any("est. rows" in line for line in result["stats_skew"]["plan"])
    )
    failures = [
        name
        for name, floor in thresholds.items()
        if result[name]["speedup"] < floor
    ]
    passed = plans_ok and result["identical"] and not failures

    payload = dict(result, thresholds=thresholds, smoke=args.smoke,
                   passed=passed)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not result["identical"]:
        print("FAIL: fast-path and baseline plans returned different rows")
        return 1
    if not plans_ok:
        print("FAIL: EXPLAIN/planner stats no longer show the fast plans")
        return 1
    if failures:
        for name in failures:
            print(f"FAIL: {name} speedup {result[name]['speedup']:.1f}x is "
                  f"below {thresholds[name]:.1f}x")
        return 1
    print("OK: " + ", ".join(
        f"{name} {result[name]['speedup']:,.1f}x (>= {floor:.1f}x)"
        for name, floor in thresholds.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
