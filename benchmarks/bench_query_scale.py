"""Query-scale benchmark: ordered indexes, range-scan planning, and
compiled predicates vs the seed execution paths.

Times three agent-shaped query classes at scale (see
:mod:`repro.bench.query_scale` for the measurement harness):

* a selective range filter through a ``USING BTREE`` index slice,
* ``ORDER BY ... LIMIT 10`` through the early-exit ordered index scan,
* a multi-conjunct sequential-scan WHERE through compiled predicates,

each against its forced baseline (``db.planner_options`` toggles), with
results asserted byte-identical between the two plans.

Usage::

    PYTHONPATH=src python benchmarks/bench_query_scale.py           # full (100k rows)
    PYTHONPATH=src python benchmarks/bench_query_scale.py --smoke   # CI-sized

Appends the measured result to ``BENCH_query.json`` (override with
``--out``; runs accumulate in a ``history`` list so the perf trajectory
is tracked across PRs). Exits non-zero if any speedup falls below its
acceptance threshold, if the fast plans stop appearing in EXPLAIN, or if
either plan's rows diverge.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.query_scale import experiment_query_scale
from repro.bench.reporting import record_bench_result, render_query_scale

#: acceptance thresholds per query class (full-size run); smoke runs use
#: laxer floors since tiny tables leave little work to skip
THRESHOLDS = {"range": 20.0, "topn": 5.0, "predicate": 1.5}
SMOKE_THRESHOLDS = {"range": 3.0, "topn": 1.5, "predicate": 1.1}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=100_000,
                        help="rows in the events table")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (10k rows, relaxed thresholds)")
    parser.add_argument("--out", default="BENCH_query.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    rows = 10_000 if args.smoke else args.rows
    thresholds = SMOKE_THRESHOLDS if args.smoke else THRESHOLDS

    result = experiment_query_scale(rows=rows)
    print(render_query_scale(result))

    plans_ok = (
        any("Index Range Scan" in line for line in result["range"]["plan"])
        and any("Ordered Index Scan" in line for line in result["topn"]["plan"])
        and result["planner_stats"]["ordered_scans"] > 0
        and all("Seq Scan" in line for line in result["predicate"]["plan"])
    )
    failures = [
        name
        for name, floor in thresholds.items()
        if result[name]["speedup"] < floor
    ]
    passed = plans_ok and result["identical"] and not failures

    payload = dict(result, thresholds=thresholds, smoke=args.smoke,
                   passed=passed)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not result["identical"]:
        print("FAIL: fast-path and baseline plans returned different rows")
        return 1
    if not plans_ok:
        print("FAIL: EXPLAIN/planner stats no longer show the fast plans")
        return 1
    if failures:
        for name in failures:
            print(f"FAIL: {name} speedup {result[name]['speedup']:.1f}x is "
                  f"below {thresholds[name]:.1f}x")
        return 1
    print("OK: " + ", ".join(
        f"{name} {result[name]['speedup']:,.1f}x (>= {floor:.1f}x)"
        for name, floor in thresholds.items()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
