"""Fault-recovery benchmark: seam overhead, torture sweep, retry litmus.

Runs the three measurements of :mod:`repro.bench.fault_recovery`:

* the Filesystem seam's passthrough overhead on WAL-shaped I/O (the
  production configuration must cost at most a few percent over raw
  builtin calls),
* a bounded crash/EIO torture sweep (every sampled recovery must
  surface an exact committed prefix — zero violations allowed), and
* the PR-4 zero-lost-updates writer-contention litmus re-run through
  ``run_with_retries`` with jittered backoff vs zero-backoff re-issue
  (both must lose zero updates at comparable commit throughput).

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py           # full
    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --smoke   # CI

Appends the measured result to ``BENCH_faults.json`` (override with
``--out``; runs accumulate in a ``history`` list so the trajectory is
tracked across PRs). Exits non-zero if the passthrough overhead gate,
the torture sweep, or the retry litmus fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.fault_recovery import (
    experiment_fault_recovery,
    measure_seam_overhead,
)
from repro.bench.reporting import record_bench_result, render_faults

PASSTHROUGH_OVERHEAD_PCT = 5.0
#: the litmus tolerates throughput noise; backoff must not collapse
#: against immediate re-issue
THROUGHPUT_RATIO_FLOOR = 0.5
#: a one-shot timing burst must not fail CI: the overhead gate re-measures
#: (each measurement is already best-of-N) and takes the minimum
SEAM_REMEASURES = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seam-cycles", type=int, default=20_000,
                        help="write+flush cycles per seam variant")
    parser.add_argument("--torture-rows", type=int, default=20,
                        help="autocommit inserts in the torture workload")
    parser.add_argument("--torture-stride", type=int, default=3,
                        help="sample every Nth filesystem operation")
    parser.add_argument("--writer-sessions", type=int, default=4,
                        help="concurrent writers in the retry litmus")
    parser.add_argument("--increments", type=int, default=8,
                        help="increments per writer session")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller sizes)")
    parser.add_argument("--out", default="BENCH_faults.json",
                        help="where to append the JSON result")
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = dict(
            seam_cycles=8_000, torture_rows=10, torture_stride=4,
            writer_sessions=3, increments_per_session=5,
        )
    else:
        sizes = dict(
            seam_cycles=args.seam_cycles, torture_rows=args.torture_rows,
            torture_stride=args.torture_stride,
            writer_sessions=args.writer_sessions,
            increments_per_session=args.increments,
        )

    result = experiment_fault_recovery(**sizes)
    # the overhead gate is a few-percent threshold on a noisy host: on a
    # miss, re-measure and keep the best reading before concluding the
    # seam itself (rather than a scheduler burst) costs too much
    attempts = 1
    while (
        result["seam"]["passthrough_overhead_pct"] > PASSTHROUGH_OVERHEAD_PCT
        and attempts < SEAM_REMEASURES
    ):
        attempts += 1
        remeasured = measure_seam_overhead(cycles=sizes["seam_cycles"])
        if (
            remeasured["passthrough_overhead_pct"]
            < result["seam"]["passthrough_overhead_pct"]
        ):
            result["seam"] = remeasured
    result["seam"]["measurements"] = attempts

    print(render_faults(result))

    seam = result["seam"]
    torture = result["torture"]
    litmus = result["retry_litmus"]
    passed = (
        seam["passthrough_overhead_pct"] <= PASSTHROUGH_OVERHEAD_PCT
        and torture["violations"] == 0
        and litmus["litmus_ok"]
        and litmus["throughput_ratio"] >= THROUGHPUT_RATIO_FLOOR
    )
    payload = dict(
        result,
        smoke=args.smoke,
        passthrough_threshold_pct=PASSTHROUGH_OVERHEAD_PCT,
        throughput_ratio_floor=THROUGHPUT_RATIO_FLOOR,
        passed=passed,
    )
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if torture["violations"] != 0:
        print(f"FAIL: {torture['violations']} recovery violations in the "
              "torture sweep")
        return 1
    if not litmus["litmus_ok"]:
        print("FAIL: retry litmus lost updates or stuck sessions: "
              f"backoff={litmus['backoff']['lost_updates']} lost / "
              f"{litmus['backoff']['stuck_sessions']} stuck, "
              f"immediate={litmus['immediate']['lost_updates']} lost / "
              f"{litmus['immediate']['stuck_sessions']} stuck")
        return 1
    if litmus["throughput_ratio"] < THROUGHPUT_RATIO_FLOOR:
        print(f"FAIL: backoff throughput collapsed to "
              f"{litmus['throughput_ratio']:.2f}x of immediate re-issue "
              f"(floor {THROUGHPUT_RATIO_FLOOR:.1f}x)")
        return 1
    if seam["passthrough_overhead_pct"] > PASSTHROUGH_OVERHEAD_PCT:
        print(f"FAIL: passthrough seam overhead "
              f"{seam['passthrough_overhead_pct']:.2f}% exceeds "
              f"{PASSTHROUGH_OVERHEAD_PCT:.1f}% "
              f"(after {seam['measurements']} measurements)")
        return 1
    print(f"OK: passthrough overhead {seam['passthrough_overhead_pct']:+.2f}% "
          f"(threshold {PASSTHROUGH_OVERHEAD_PCT:.1f}%), "
          f"{torture['crash_points']}+{torture['error_points']} fault points "
          "with 0 violations, retry litmus clean at "
          f"{litmus['throughput_ratio']:.2f}x relative throughput")
    return 0


if __name__ == "__main__":
    sys.exit(main())
