"""Figure 5(a): context retrieval — average LLM calls per BIRD-Ext task.

Paper result: BridgeScope needs >30% fewer LLM calls than PG-MCP−
(execute_sql only), approaching the best-achievable 3 calls, because
explicit context tools eliminate hallucinated-schema retries.
"""

from repro.bench.reporting import render_fig5a
from repro.bench.runner import experiment_fig5a


def test_fig5a_context_retrieval(benchmark, bench_tasks, bench_scale):
    result = benchmark.pedantic(
        experiment_fig5a,
        kwargs={"n_tasks": bench_tasks, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig5a(result))
    for model, row in result.items():
        # BridgeScope approaches best-achievable and beats PG-MCP-
        assert row["bridgescope"] < row["pg-mcp-minus"], model
        assert row["bridgescope"] <= row["best-achievable"] + 1.0, model
