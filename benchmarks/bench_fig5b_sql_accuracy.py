"""Figure 5(b): SQL execution accuracy — fine- vs coarse-grained tools.

Paper result: accuracies are comparable, showing action-level tool
modularization introduces no side effects on task completeness.
"""

from repro.bench.reporting import render_fig5b
from repro.bench.runner import experiment_fig5b


def test_fig5b_sql_accuracy(benchmark, bench_tasks, bench_scale):
    result = benchmark.pedantic(
        experiment_fig5b,
        kwargs={"n_tasks": bench_tasks, "scale": bench_scale},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_fig5b(result))
    for model, row in result.items():
        assert abs(row["bridgescope"] - row["pg-mcp"]) <= 0.15, (
            f"accuracies should be comparable for {model}"
        )
        assert row["bridgescope"] >= 0.6
