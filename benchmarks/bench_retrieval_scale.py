"""Retrieval-scale benchmark: indexed get_value vs the brute-force path.

Times repeated ``get_value`` tool calls against a column with 100k
distinct values under both exemplar-retrieval paths (see
:mod:`repro.bench.retrieval_scale` for the measurement harness). The
indexed path runs at the full column size; the brute-force baseline
(``config.use_retrieval_index = False``, the seed's only strategy) is
timed on a smaller column and extrapolated linearly, since its per-call
cost is O(distinct) — which is exactly the point.

Usage::

    PYTHONPATH=src python benchmarks/bench_retrieval_scale.py           # full (100k)
    PYTHONPATH=src python benchmarks/bench_retrieval_scale.py --smoke   # CI-sized

Appends the measured result to ``BENCH_retrieval.json`` (override with
``--out``; runs accumulate in a ``history`` list) so the perf trajectory
is tracked across PRs. Exits non-zero
if the warm-call speedup is below the acceptance threshold (50x full,
5x smoke — at smoke sizes the brute-force path is not yet pathological)
or if indexed and brute-force rankings differ on the equivalence suite.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.reporting import record_bench_result, render_retrieval_scale
from repro.bench.retrieval_scale import experiment_retrieval_scale

SPEEDUP_THRESHOLD = 50.0
SMOKE_THRESHOLD = 5.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distinct", type=int, default=100_000,
                        help="distinct values for the indexed measurement")
    parser.add_argument("--brute-distinct", type=int, default=5_000,
                        help="distinct values for the brute-force baseline")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (4k distinct, direct comparison)")
    parser.add_argument("--out", default="BENCH_retrieval.json",
                        help="where to write the JSON result")
    args = parser.parse_args(argv)

    distinct = 4_000 if args.smoke else args.distinct
    brute_distinct = 4_000 if args.smoke else args.brute_distinct
    threshold = SMOKE_THRESHOLD if args.smoke else SPEEDUP_THRESHOLD

    result = experiment_retrieval_scale(
        distinct=distinct, brute_distinct=brute_distinct
    )
    print(render_retrieval_scale(result))

    payload = dict(result, threshold=threshold, smoke=args.smoke,
                   passed=result["equivalence_ok"]
                   and result["speedup"] >= threshold)
    record_bench_result(args.out, payload)
    print(f"recorded run in {args.out}")

    if not result["equivalence_ok"]:
        print("FAIL: indexed and brute-force rankings differ: "
              f"{result['equivalence_mismatches']}")
        return 1
    if result["speedup"] < threshold:
        print(f"FAIL: speedup {result['speedup']:.1f}x is below "
              f"{threshold:.0f}x")
        return 1
    print(f"OK: speedup {result['speedup']:,.1f}x "
          f"(threshold {threshold:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
